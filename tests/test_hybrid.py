"""Hybrid executor and task-graph runtime: the two-axis acceptance suite.

Pins the tentpole claims of the graph-runtime refactor:

* canonical-label equality of every lowering mode against the serial
  reference, across scheduler x reuse-policy x kernel;
* fault recovery at task granularity — a dead *shard* worker and a
  dead *variant* worker both recover to fault-free-equal labels with
  zero leaked shared-memory segments;
* genuine interleaving — on the simulated clock, shard-task spans of
  one variant overlap variant-task spans of another (the pool never
  drains while a big scratch variant holds the spatial axis).
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro import FaultPlan, FaultSpec, RetryPolicy, Session, Variant, VariantSet
from repro.core.reuse import POLICIES
from repro.core.scheduling import SCHEDULERS
from repro.core.taskgraph import lower_variants
from repro.engine.context import KERNELS
from repro.exec.graph import EVENT_SHARD_PLAN
from repro.obs.span import SPAN_TASK, Tracer
from repro.util.rng import resolve_rng

VSET = VariantSet.from_product([0.4, 0.5, 0.6], [4, 6])

#: Policy subset for the equality matrix (the full registry is already
#: swept by the recovery grid in tests/test_resilience.py).
MATRIX_POLICIES = ("CLUSDENSITY", "CLUSSIZE")


def _repro_segments() -> set[str]:
    return {p.rsplit("/", 1)[-1] for p in glob.glob("/dev/shm/repro_*")}


def canonical(labels: np.ndarray) -> np.ndarray:
    out = np.full(labels.shape, -1, dtype=labels.dtype)
    mapping: dict = {}
    for i, lab in enumerate(labels):
        if lab < 0:
            continue
        if lab not in mapping:
            mapping[lab] = len(mapping)
        out[i] = mapping[lab]
    return out


@pytest.fixture(scope="module")
def points():
    g = resolve_rng(77)
    return np.ascontiguousarray(
        np.vstack([g.normal(0, 0.5, (90, 2)), g.normal(5, 0.6, (90, 2))])
    )


@pytest.fixture(scope="module")
def baseline(points):
    with Session(points) as s:
        batch = s.run(VSET)
    return {v: canonical(batch.results[v].labels) for v in VSET}


def assert_canonical_equal(batch, baseline):
    for v in VSET:
        assert np.array_equal(
            canonical(batch.results[v].labels), baseline[v]
        ), f"labels diverged for {v}"


def _hybrid_partition(points) -> tuple[set[Variant], list[Variant]]:
    """(sharded scratch variants, chain variants) under the test knobs."""
    plan = SCHEDULERS["SCHEDGREEDY"].plan(VSET)
    graph = lower_variants(
        plan, VSET, mode="hybrid", n_regions=2, n_points=len(points),
        shard_threshold=0,
    )
    sharded = set(graph.sharded_variants())
    chains = [t.variant for t in graph.variant_tasks()]
    return sharded, chains


# ----------------------------------------------------------------------
# Canonical equality across the lowering matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("policy", MATRIX_POLICIES)
@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
@pytest.mark.parametrize(
    "executor", ["threads", "processes", "sharded", "hybrid", "simulated"]
)
class TestLoweringMatrix:
    def test_matches_serial_reference(
        self, points, baseline, executor, scheduler, policy, kernel
    ):
        assert policy in POLICIES
        kw: dict = {"regions": 2} if executor in ("sharded", "hybrid") else {}
        if executor == "hybrid":
            kw["shard_threshold"] = 0
        with Session(points) as s:
            batch = s.run(
                VSET,
                executor=executor,
                n_threads=2,
                scheduler=scheduler,
                policy=policy,
                kernel=kernel,
                **kw,
            )
        assert set(batch.results) == set(VSET)
        assert_canonical_equal(batch, baseline)


# ----------------------------------------------------------------------
# Fault recovery at task granularity
# ----------------------------------------------------------------------
class TestHybridFaults:
    def _run_with_fault(self, points, index: int, kind: str = "kill"):
        plan = FaultPlan([FaultSpec(kind, index)])
        with Session(points) as s:
            return s.run(
                VSET,
                executor="hybrid",
                n_threads=3,
                regions=2,
                shard_threshold=0,
                fault_plan=plan,
                retry_policy=RetryPolicy(max_retries=2),
            )

    def test_dead_shard_worker_recovers(self, points, baseline):
        sharded, _ = _hybrid_partition(points)
        assert sharded, "threshold 0 must shard the scratch roots"
        victim = sorted(sharded, key=lambda v: v.as_tuple())[0]
        index = [i for i, v in enumerate(VSET) if v == victim][0]
        before = _repro_segments()
        batch = self._run_with_fault(points, index)
        report = batch.report
        assert report is not None and report.complete
        assert set(batch.results) == set(VSET)
        assert report.retried, "the killed shard must surface as a retry"
        assert_canonical_equal(batch, baseline)
        assert _repro_segments() == before, "leaked shared-memory segments"

    def test_dead_variant_worker_recovers(self, points, baseline):
        sharded, chains = _hybrid_partition(points)
        assert chains, "the grid must keep some whole-variant chains"
        victim = sorted(chains, key=lambda v: v.as_tuple())[0]
        assert victim not in sharded
        index = [i for i, v in enumerate(VSET) if v == victim][0]
        before = _repro_segments()
        batch = self._run_with_fault(points, index)
        report = batch.report
        assert report is not None and report.complete
        assert set(batch.results) == set(VSET)
        assert report.retried, "the killed chain worker must retry"
        for v in report.retried:
            assert report[v].attempts > 1
        assert_canonical_equal(batch, baseline)
        assert _repro_segments() == before, "leaked shared-memory segments"

    def test_crashed_variant_worker_recovers(self, points, baseline):
        _, chains = _hybrid_partition(points)
        victim = sorted(chains, key=lambda v: v.as_tuple())[-1]
        index = [i for i, v in enumerate(VSET) if v == victim][0]
        batch = self._run_with_fault(points, index, kind="crash")
        assert batch.report is not None and batch.report.complete
        assert_canonical_equal(batch, baseline)


# ----------------------------------------------------------------------
# Task-identity spans and interleaving
# ----------------------------------------------------------------------
class TestTaskSpans:
    def test_shard_spans_overlap_other_variants_spans(self, points):
        """Acceptance: a shard task of variant X runs concurrently with
        a variant task of Y != X on the simulated clock.

        The grid is a two-root forest (the minpts=4 pair cannot reuse
        the minpts=8 family at larger eps), so the plan finishes one
        chain while the second root's fan-out holds the other worker.
        """
        vset = VariantSet(
            [Variant(0.4, 8), Variant(0.5, 8), Variant(0.6, 8),
             Variant(0.3, 4), Variant(0.35, 4)]
        )
        tracer = Tracer()
        with Session(points, tracer=tracer) as s:
            s.run(
                vset,
                executor="simulated",
                n_threads=2,
                regions=2,
                shard_threshold=0,
            )
        tasks = [r for r in tracer.records() if r.name == SPAN_TASK]
        assert tasks, "the sim substrate must emit task-identity spans"
        shards = [r for r in tasks if r.args["kind"] == "shard"]
        variants = [r for r in tasks if r.args["kind"] == "variant"]
        assert shards and variants

        def vid(record):  # "shard:0.4/4#1" / "variant:0.5/4" -> "0.4/4"
            return record.args["id"].split(":", 1)[1].split("#", 1)[0]

        overlaps = [
            (sh, vt)
            for sh in shards
            for vt in variants
            if vid(sh) != vid(vt)
            and sh.t0 < vt.t0 + vt.dur
            and vt.t0 < sh.t0 + sh.dur
        ]
        assert overlaps, (
            "no shard-task span overlapped another variant's task span; "
            "the two parallelism axes are not interleaving"
        )

    def test_every_task_span_carries_identity(self, points):
        tracer = Tracer()
        with Session(points, tracer=tracer) as s:
            s.run(
                VSET, executor="simulated", n_threads=2,
                regions=2, shard_threshold=0,
            )
        for r in tracer.records():
            if r.name != SPAN_TASK:
                continue
            assert r.args["kind"] in ("variant", "shard", "merge")
            assert ":" in r.args["id"]
            assert isinstance(r.args["deps"], list)

    def test_lanes_substrate_emits_task_spans(self, points):
        tracer = Tracer()
        with Session(points, tracer=tracer) as s:
            s.run(
                VSET, executor="hybrid", n_threads=2,
                regions=2, shard_threshold=0,
            )
        kinds = {
            r.args["kind"] for r in tracer.records() if r.name == SPAN_TASK
        }
        assert kinds == {"variant", "shard", "merge"}


# ----------------------------------------------------------------------
# Simulated-backend mode selection
# ----------------------------------------------------------------------
class TestSimulatedModeSelection:
    def _shard_plan_events(self, tracer):
        return [r for r in tracer.records() if r.name == EVENT_SHARD_PLAN]

    def test_plain_run_stays_variant_mode(self, points, baseline):
        tracer = Tracer()
        with Session(points, tracer=tracer) as s:
            batch = s.run(VSET, executor="simulated", n_threads=2)
        assert self._shard_plan_events(tracer) == []
        assert_canonical_equal(batch, baseline)

    def test_regions_select_shard_mode(self, points, baseline):
        tracer = Tracer()
        with Session(points, tracer=tracer) as s:
            batch = s.run(VSET, executor="simulated", n_threads=2, regions=2)
        assert self._shard_plan_events(tracer)
        assert_canonical_equal(batch, baseline)

    def test_shard_threshold_selects_hybrid_mode(self, points, baseline):
        tracer = Tracer()
        with Session(points, tracer=tracer) as s:
            batch = s.run(
                VSET, executor="simulated", n_threads=2,
                regions=2, shard_threshold=0,
            )
        assert self._shard_plan_events(tracer)
        # hybrid shards only the scratch roots, so variant tasks remain
        kinds = {
            r.args["kind"] for r in tracer.records() if r.name == SPAN_TASK
        }
        assert kinds == {"variant", "shard", "merge"}
        assert_canonical_equal(batch, baseline)

    def test_high_threshold_keeps_variant_tasks_whole(self, points, baseline):
        tracer = Tracer()
        with Session(points, tracer=tracer) as s:
            batch = s.run(
                VSET, executor="simulated", n_threads=2,
                regions=2, shard_threshold=10 ** 9,
            )
        assert self._shard_plan_events(tracer) == []
        assert_canonical_equal(batch, baseline)
