"""Self-healing supervisor: heartbeats, remediation loop, chaos soak.

Covers the supervision subsystem end to end:

* heartbeat plumbing — mailbox slots, worker pulses, and the
  parent-clock-only staleness rules of :class:`HealthMonitor`
  (deterministic via an injected clock);
* the remediation loop units — :class:`Detector` classification,
  :class:`Proposer` candidates, :class:`RiskGate` thresholds,
  :class:`Verifier` span pairing;
* the graceful-degradation ladder — rung ordering per axis, floor
  detection, and the :class:`CircuitBreaker`;
* knob threading — ``supervise=`` on :class:`Session`, executor
  instances, and per-run overrides, normalized by
  :func:`as_supervise_policy`;
* seeded retry-backoff jitter (never wallclock-derived);
* the **chaos soak grid** — injected stalls, crash loops, merge
  corruption, and forced ladder descents across the lanes-substrate
  executors, asserting byte-identical labels against fault-free runs,
  zero leaked shared-memory segments, and an applied-action ↔
  verifier-span pairing for every auto-remediation;
* the acceptance scenario from the issue — 12 variants, a stuck shard
  worker, a crash-looping variant worker, an injected orphan segment,
  and one merge corruption, healed without manual intervention;
* ``repro doctor --watch`` / ``--json`` reusing the supervisor's
  detector.
"""

from __future__ import annotations

import contextlib
import glob
import json
import multiprocessing
from multiprocessing import shared_memory  # repro: allow[shm-lifecycle] (forges leaked segments)

import numpy as np
import pytest

from repro import FaultPlan, FaultSpec, RetryPolicy, Session, Variant, VariantSet
from repro.obs.registry import MetricsRegistry
from repro.obs.span import Tracer
from repro.resilience.report import BatchReport
from repro.supervise import (
    ACTION_KINDS,
    ANOMALY_KINDS,
    Action,
    Anomaly,
    CircuitBreaker,
    DEFAULT_LADDER,
    DegradationLadder,
    Detector,
    HealthMonitor,
    HeartbeatMailbox,
    Proposer,
    RiskGate,
    Signal,
    SupervisePolicy,
    Supervisor,
    Verifier,
    as_supervise_policy,
    worker_pulse,
)
from repro.supervise.remedy import BASE_RISK
from repro.supervise.signals import task_token
from repro.util.errors import ValidationError
from repro.util.rng import derive_rng, resolve_rng


def _repro_segments() -> set[str]:
    return {p.rsplit("/", 1)[-1] for p in glob.glob("/dev/shm/repro_*")}


@pytest.fixture(scope="module")
def points():
    g = resolve_rng(777)
    return np.ascontiguousarray(g.random((500, 2)) * 10)


#: Small chain for the per-fault soak cases.
VSET4 = VariantSet([Variant(0.5 + 0.1 * i, 5) for i in range(4)])

#: The acceptance scenario's 12 variants: two reuse-incomparable
#: families (neither root satisfies the inclusion criteria for the
#: other family), so the hybrid plan deterministically contains two
#: sharded scratch roots *and* reuse chains hanging off each.
VSET12 = VariantSet(
    [Variant(e, m) for e in (0.3, 0.35, 0.4) for m in (4, 5)]
    + [Variant(e, m) for e in (0.5, 0.55, 0.6) for m in (8, 9)]
)

#: Fully autonomous supervision with a tight stall detector — the soak
#: grid wants remediation, not operator recommendations.
AUTONOMOUS = SupervisePolicy(
    risk_budget=1.0, stall_timeout_s=1.0, poll_interval_s=0.1
)


def assert_byte_equal(batch, base, variants):
    for v in variants:
        assert np.array_equal(batch[v].labels, base[v].labels), (
            f"labels diverged for {v}"
        )


def remediation_kinds(report: BatchReport) -> set[str]:
    return {r.anomaly.kind for r in report.remediations}


def applied_records(report: BatchReport):
    return [r for r in report.remediations if r.decision == "applied"]


# ----------------------------------------------------------------------
# heartbeat signals
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestHeartbeats:
    def test_pulse_bumps_slot_sequence(self):
        box = HeartbeatMailbox.create(3)
        try:
            pulse = worker_pulse(box.handle(1))
            assert box.seq(1) == 0
            pulse.beat("shard:0.5/4#1")
            pulse.beat("shard:0.5/4#1")
            assert box.seq(1) == 2
            assert box.seq(0) == 0  # slots are independent
            pulse.close()
        finally:
            box.close()

    def test_none_handle_means_no_emitter(self):
        assert worker_pulse(None) is None

    def test_task_token_is_stable_and_63bit(self):
        t = task_token("merge:0.5/4")
        assert t == task_token("merge:0.5/4")
        assert 0 <= t < 2**63
        assert t != task_token("merge:0.5/8")

    def test_stale_slot_reported_once_per_seq(self):
        clock = FakeClock()
        box = HeartbeatMailbox.create(1)
        try:
            mon = HealthMonitor(box, stall_timeout_s=5.0, clock=clock)
            mon.job_started(0, "group:g0")
            clock.advance(4.0)
            assert mon.poll() == []  # within the timeout
            clock.advance(2.0)
            sigs = mon.poll()
            assert [s.source for s in sigs] == ["heartbeat"]
            assert sigs[0].subject == "group:g0"
            assert mon.poll() == []  # deduplicated until the seq moves
        finally:
            box.close()

    def test_beat_rearms_staleness(self):
        clock = FakeClock()
        box = HeartbeatMailbox.create(1)
        try:
            mon = HealthMonitor(box, stall_timeout_s=5.0, clock=clock)
            mon.job_started(0, "group:g0")
            pulse = worker_pulse(box.handle(0))
            clock.advance(6.0)
            pulse.beat("group:g0")  # fresh beat before the poll
            assert mon.poll() == []
            clock.advance(6.0)  # now genuinely stale again
            assert len(mon.poll()) == 1
            pulse.close()
        finally:
            box.close()

    def test_finished_job_is_never_stale(self):
        clock = FakeClock()
        box = HeartbeatMailbox.create(1)
        try:
            mon = HealthMonitor(box, stall_timeout_s=1.0, clock=clock)
            mon.job_started(0, "group:g0")
            mon.job_finished(0)
            clock.advance(60.0)
            assert mon.poll() == []
        finally:
            box.close()

    def test_deadline_at_risk_is_advisory_and_once(self):
        clock = FakeClock()
        mon = HealthMonitor(None, deadline_risk_fraction=0.8, clock=clock)
        mon.job_started(0, "shard:0.5/4#0", deadline_s=10.0)
        clock.advance(7.0)
        assert mon.poll() == []
        clock.advance(2.0)  # 9s elapsed > 80% of 10s
        sigs = mon.poll()
        assert [s.source for s in sigs] == ["deadline"]
        assert mon.poll() == []

    def test_static_folds_have_declared_sources(self):
        assert HealthMonitor.exhausted("t", 3, 3).source == "counters"
        assert HealthMonitor.crash_looping("t", 2, 5).source == "counters"
        assert HealthMonitor.corruption("t", "bad").source == "integrity"


# ----------------------------------------------------------------------
# detector / proposer / risk gate / verifier
# ----------------------------------------------------------------------
class TestRemediationLoop:
    def test_classification_table(self):
        det = Detector()
        cases = {
            "heartbeat": "stuck-task",
            "counters": "crash-loop",
            "integrity": "merge-corruption",
            "audit": "shm-leak",
            "deadline": "deadline-at-risk",
        }
        for source, kind in cases.items():
            anomaly = det.classify(Signal(source, "subject"))
            assert anomaly.kind == kind
            assert anomaly.kind in ANOMALY_KINDS

    def test_unknown_source_raises(self):
        with pytest.raises(ValueError, match="unclassifiable"):
            Detector().classify(Signal("vibes", "x"))

    def test_risk_is_base_plus_blast_radius_capped(self):
        proposer = Proposer()
        for kind, base in BASE_RISK.items():
            assert kind in ACTION_KINDS
        quarantine = proposer.quarantine("t", blast_radius=0.5)
        assert quarantine.risk == 1.0  # 0.9 + 0.25 capped
        reclaim = Proposer().propose(
            Anomaly("shm-leak", "repro_x"), blast_radius=0.1
        )[0]
        assert reclaim.risk == pytest.approx(BASE_RISK["reclaim-segment"] + 0.05)

    def test_gate_boundary_is_inclusive(self):
        action = Proposer().propose(Anomaly("stuck-task", "t"))[0]
        assert RiskGate(action.risk).decide(action) == "apply"
        assert RiskGate(action.risk - 0.01).decide(action) == "recommend"

    def test_gate_validation(self):
        with pytest.raises(ValueError, match="risk_budget"):
            RiskGate(1.5)

    def test_first_applicable_respects_order(self):
        proposer = Proposer()
        cheap = proposer.propose(Anomaly("shm-leak", "s"))[0]
        pricey = proposer.quarantine("s")
        gate = RiskGate(0.5)
        assert gate.first_applicable([pricey, cheap]) is cheap
        assert RiskGate(0.0).first_applicable([pricey, cheap]) is None

    def test_crash_loop_proposal_depends_on_ladder_hint(self):
        proposer = Proposer()
        anomaly = Anomaly("crash-loop", "group:g0")
        mid_budget = proposer.propose(anomaly)
        assert [a.kind for a in mid_budget] == ["resubmit-task"]
        exhausted = proposer.propose(
            anomaly, ladder_hint="substrate:lanes→threads"
        )
        assert [a.kind for a in exhausted] == ["degrade"]
        assert "substrate:lanes→threads" in exhausted[0].detail

    def test_register_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown anomaly kind"):
            Proposer().register("gremlins", lambda a, b, h: [])

    def test_verifier_emits_paired_span(self):
        tracer = Tracer()
        verifier = Verifier(tracer)
        sup = Supervisor(SupervisePolicy(risk_budget=1.0), tracer=tracer)
        rec = sup.on_corruption("merge:0.5/4", "bad labels", blast_radius=0.1)
        assert rec.decision == "applied"
        verifier.resolve(rec, True, "re-ran clean")
        assert rec.verdict == "verified"
        verify = [r for r in tracer.records() if r.name == "supervise.verify"]
        assert verify and verify[-1].args["rid"] == rec.rid
        assert verify[-1].args["outcome"] == "verified"


# ----------------------------------------------------------------------
# ladder + circuit breaker
# ----------------------------------------------------------------------
class TestLadder:
    def test_declared_rung_order(self):
        ladder = DegradationLadder()
        assert ladder.rungs("lowering") == ("hybrid", "shard", "variant")
        assert ladder.rungs("kernel") == ("cellgraph", "bfs")
        assert ladder.rungs("substrate") == ("lanes", "threads", "serial")
        assert ladder.axes == ("kernel", "lowering", "substrate")

    def test_next_step_and_floor(self):
        ladder = DegradationLadder()
        step = ladder.next_step("substrate", "lanes")
        assert (step.source, step.target) == ("lanes", "threads")
        assert step.label == "substrate:lanes→threads"
        assert ladder.next_step("substrate", "serial") is None
        assert ladder.floor("substrate") == "serial"
        assert ladder.floor("lowering") == "variant"

    def test_every_default_step_descends_its_axis(self):
        ladder = DegradationLadder()
        for step in DEFAULT_LADDER:
            rungs = ladder.rungs(step.axis)
            assert rungs.index(step.target) == rungs.index(step.source) + 1

    def test_forked_ladder_rejected(self):
        from repro.supervise.ladder import LadderStep

        with pytest.raises(ValueError, match="chain"):
            DegradationLadder(
                (
                    LadderStep("substrate", "lanes", "threads"),
                    LadderStep("substrate", "lanes", "serial"),
                )
            )

    def test_breaker_trips_at_threshold(self):
        breaker = CircuitBreaker(threshold=2)
        assert not breaker.tripped("t")
        assert breaker.record_failure("t") is False
        assert breaker.record_failure("t") is True
        assert breaker.tripped("t")
        assert breaker.failures("t") == 2
        assert not breaker.tripped("other")

    def test_tripped_breaker_suppresses_and_quarantines(self):
        pol = SupervisePolicy(risk_budget=1.0, breaker_threshold=1)
        sup = Supervisor(pol)
        sup.breaker.record_failure("group:g0")
        rec, step = sup.on_exhausted(
            "group:g0", submissions=3, budget=3, blast_radius=0.1
        )
        assert step is None
        assert rec.decision == "suppressed"
        assert rec.action.kind == "quarantine"

    def test_exhaustion_walks_the_ladder(self):
        sup = Supervisor(SupervisePolicy(risk_budget=1.0))
        rec, step = sup.on_exhausted(
            "group:g0", submissions=3, budget=3, blast_radius=0.1,
            axis="substrate", rung="lanes",
        )
        assert rec.decision == "applied" and rec.action.kind == "degrade"
        assert (step.source, step.target) == ("lanes", "threads")
        rec2, step2 = sup.on_exhausted(
            "group:g0", submissions=4, budget=3, blast_radius=0.1,
            axis="substrate", rung="threads",
        )
        assert (step2.source, step2.target) == ("threads", "serial")
        rec3, step3 = sup.on_exhausted(
            "group:g0", submissions=5, budget=3, blast_radius=0.1,
            axis="substrate", rung="serial",
        )
        # Third strike trips the default breaker *and* serial is the
        # floor; either way no step comes back.
        assert step3 is None


# ----------------------------------------------------------------------
# knob threading
# ----------------------------------------------------------------------
class TestSuperviseKnob:
    def test_normalizer(self):
        assert as_supervise_policy(None) is None
        assert as_supervise_policy(False) is None
        assert as_supervise_policy(True) == SupervisePolicy()
        pol = SupervisePolicy(risk_budget=0.9)
        assert as_supervise_policy(pol) is pol
        with pytest.raises(TypeError, match="supervise"):
            as_supervise_policy(0.9)

    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            SupervisePolicy(risk_budget=1.5)
        with pytest.raises(ValidationError):
            SupervisePolicy(stall_timeout_s=0.0)
        with pytest.raises(ValidationError):
            SupervisePolicy(poll_interval_s=-1.0)
        with pytest.raises(ValidationError):
            SupervisePolicy(deadline_risk_fraction=0.0)
        with pytest.raises(ValidationError):
            SupervisePolicy(breaker_threshold=0)

    def test_session_default_threads_to_context(self, points):
        with Session(points, supervise=True) as s:
            assert s.context().supervisor == SupervisePolicy()
            # Per-run False overrides the session default.
            assert s.context(supervise=False).supervisor is None

    def test_run_override_beats_session_default(self, points):
        pol = SupervisePolicy(risk_budget=0.9)
        with Session(points) as s:
            assert s.context().supervisor is None
            assert s.context(supervise=pol).supervisor is pol

    def test_executor_level_knob(self, points):
        from repro.exec import EXECUTORS

        ex = EXECUTORS["processes"](supervise=True)
        assert ex.supervise == SupervisePolicy()
        assert "supervise" in repr(ex)
        with Session(points) as s:
            assert s.context(executor=ex).supervisor == SupervisePolicy()


# ----------------------------------------------------------------------
# seeded backoff jitter
# ----------------------------------------------------------------------
class TestBackoffJitter:
    POLICY = RetryPolicy(backoff_base_s=0.2, backoff_jitter=0.5, backoff_seed=7)

    def test_seeded_jitter_is_reproducible(self):
        a = [self.POLICY.backoff_s(i, key=3) for i in range(3)]
        b = [self.POLICY.backoff_s(i, key=3) for i in range(3)]
        assert a == b

    def test_distinct_keys_decorrelate(self):
        assert self.POLICY.backoff_s(1, key=3) != self.POLICY.backoff_s(1, key=4)

    def test_jitter_only_shortens(self):
        plain = RetryPolicy(backoff_base_s=0.2)
        for attempt in range(4):
            base = plain.backoff_s(attempt)
            jittered = self.POLICY.backoff_s(attempt, key=1)
            assert base * (1 - 0.5) <= jittered <= base

    def test_derive_rng_is_deterministic_per_path(self):
        a = derive_rng(7, 3, 1).random(4)
        b = derive_rng(7, 3, 1).random(4)
        c = derive_rng(7, 4, 1).random(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


# ----------------------------------------------------------------------
# report + registry surfacing
# ----------------------------------------------------------------------
class TestSurfacing:
    def test_report_summary_counts_remediations(self):
        sup = Supervisor(SupervisePolicy(risk_budget=1.0))
        sup.on_corruption("merge:0.5/4", "bad", blast_radius=0.1)
        report = BatchReport()
        report.remediations.extend(sup.records)
        assert "1 remediations (1 applied)" in report.summary()
        rows = report.remediation_rows()
        assert rows[0]["anomaly"]["kind"] == "merge-corruption"
        assert rows[0]["action"]["kind"] == "resubmit-task"

    def test_registry_counts_supervise_events(self):
        tracer = Tracer()
        sup = Supervisor(SupervisePolicy(risk_budget=1.0), tracer=tracer)
        rec = sup.on_corruption("merge:0.5/4", "bad", blast_radius=0.1)
        sup.task_done("merge:0.5/4", True, "re-ran clean")
        sup.on_exhausted(
            "group:g0", submissions=3, budget=3, blast_radius=0.9,
        )
        reg = MetricsRegistry()
        reg.add_spans(tracer.records())
        events = reg.supervise_events()
        assert events["anomaly"] == 2
        assert events["apply"] >= 1
        assert events["verify"] == 1
        assert rec.verdict == "verified"


# ----------------------------------------------------------------------
# chaos soak grid (real process pools)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def proc_base(points):
    with Session(points) as s:
        return s.run(VSET4, executor="processes", n_threads=2)


@pytest.fixture(scope="module")
def shard_base(points):
    with Session(points) as s:
        return s.run(VSET4, executor="sharded", n_threads=2, regions=2)


class TestChaosSoak:
    def test_stuck_group_worker_is_respawned(self, points, proc_base):
        before = _repro_segments()
        plan = FaultPlan(
            [FaultSpec("stall", 1, attempt=0, phase="start", hang_s=30.0)]
        )
        with Session(points) as s:
            batch = s.run(
                VSET4, executor="processes", n_threads=2,
                fault_plan=plan,
                retry_policy=RetryPolicy(max_retries=2, deadline_s=60.0),
                supervise=AUTONOMOUS,
            )
        assert_byte_equal(batch, proc_base, VSET4)
        assert "stuck-task" in remediation_kinds(batch.report)
        applied = applied_records(batch.report)
        assert applied and all(r.verdict == "verified" for r in applied)
        assert any(r.action.kind == "respawn-lane" for r in applied)
        assert _repro_segments() <= before

    def test_group_exhaustion_degrades_down_the_ladder(self, points, proc_base):
        plan = FaultPlan(
            [FaultSpec("stall", 1, attempt=0, phase="start", hang_s=30.0)]
        )
        with Session(points) as s:
            batch = s.run(
                VSET4, executor="processes", n_threads=2,
                fault_plan=plan,
                retry_policy=RetryPolicy(max_retries=0, deadline_s=60.0),
                supervise=AUTONOMOUS,
            )
        # No submission budget left: the supervisor lowers the group off
        # the lanes substrate instead of failing the chain.
        assert_byte_equal(batch, proc_base, VSET4)
        degrades = [
            r for r in applied_records(batch.report)
            if r.action.kind == "degrade"
        ]
        assert degrades and all(r.verdict == "verified" for r in degrades)
        assert any(
            o.degraded for o in batch.report.outcomes.values() if o.degraded
        )

    def test_stuck_shard_worker_task_targeted(self, points, shard_base):
        v = VSET4[1]
        plan = FaultPlan(
            [
                FaultSpec(
                    "stall", -1, task=f"shard:{v.eps:g}/{v.minpts}#0",
                    attempt=0, phase="start", hang_s=30.0,
                )
            ]
        )
        with Session(points) as s:
            batch = s.run(
                VSET4, executor="sharded", n_threads=2, regions=2,
                fault_plan=plan,
                retry_policy=RetryPolicy(max_retries=2, deadline_s=60.0),
                supervise=AUTONOMOUS,
            )
        assert_byte_equal(batch, shard_base, VSET4)
        assert "stuck-task" in remediation_kinds(batch.report)
        applied = applied_records(batch.report)
        assert applied and all(r.verdict == "verified" for r in applied)

    def test_pipeline_lowers_shard_to_variant(self, points, shard_base):
        v = VSET4[1]
        plan = FaultPlan(
            [
                FaultSpec(
                    "stall", -1, task=f"shard:{v.eps:g}/{v.minpts}#0",
                    attempt=0, phase="start", hang_s=30.0,
                )
            ]
        )
        with Session(points) as s:
            batch = s.run(
                VSET4, executor="sharded", n_threads=2, regions=2,
                fault_plan=plan,
                retry_policy=RetryPolicy(max_retries=0, deadline_s=60.0),
                supervise=AUTONOMOUS,
            )
        # The degraded variant re-runs from scratch at the variant
        # lowering — byte-identical because sharded results are scratch
        # computations too.
        assert_byte_equal(batch, shard_base, VSET4)
        degrades = [
            r for r in applied_records(batch.report)
            if r.action.kind == "degrade"
        ]
        assert degrades and all(r.verdict == "verified" for r in degrades)
        degraded = {
            str(o.variant): o.degraded
            for o in batch.report.outcomes.values()
            if o.degraded
        }
        assert any("lowering" in d for d in degraded.values())

    def test_merge_corruption_gated_resubmit(self, points, shard_base):
        plan = FaultPlan([FaultSpec("corrupt", 1, attempt=0, phase="finish")])
        with Session(points) as s:
            batch = s.run(
                VSET4, executor="sharded", n_threads=2, regions=2,
                fault_plan=plan,
                retry_policy=RetryPolicy(max_retries=2, deadline_s=60.0),
                supervise=AUTONOMOUS,
            )
        assert_byte_equal(batch, shard_base, VSET4)
        assert "merge-corruption" in remediation_kinds(batch.report)
        applied = applied_records(batch.report)
        assert any(r.action.kind == "resubmit-task" for r in applied)
        assert all(r.verdict == "verified" for r in applied)

    def test_zero_budget_recommends_instead_of_healing(self, points):
        plan = FaultPlan([FaultSpec("corrupt", 1, attempt=0, phase="finish")])
        with Session(points) as s:
            batch = s.run(
                VSET4, executor="sharded", n_threads=2, regions=2,
                fault_plan=plan,
                retry_policy=RetryPolicy(max_retries=2, deadline_s=60.0),
                supervise=SupervisePolicy(
                    risk_budget=0.0, stall_timeout_s=1.0, poll_interval_s=0.1
                ),
            )
        # Nothing fits a zero budget: every decision is a recommendation
        # (operator visibility) and the corrupted variant stays failed.
        assert batch.report.remediations
        assert not applied_records(batch.report)
        assert batch.report.failed


# ----------------------------------------------------------------------
# the acceptance scenario
# ----------------------------------------------------------------------
def _dead_pid() -> int:
    proc = multiprocessing.Process(target=lambda: None)
    proc.start()
    proc.join()
    return proc.pid


@pytest.fixture
def orphan_segment():
    """A repro_* segment whose 'creator' pid is dead (a fake leak)."""
    name = f"repro_{_dead_pid()}_acc001"
    seg = shared_memory.SharedMemory(create=True, size=64, name=name)  # repro: allow[shm-lifecycle]
    seg.close()
    with contextlib.suppress(Exception):
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    yield name
    with contextlib.suppress(FileNotFoundError):
        stale = shared_memory.SharedMemory(name=name)  # repro: allow[shm-lifecycle]
        stale.close()
        stale.unlink()


class TestAcceptanceScenario:
    def test_chaos_batch_heals_without_intervention(
        self, points, orphan_segment, capsys
    ):
        tracer = Tracer()
        with Session(points, tracer=tracer) as s:
            base = s.run(
                VSET12, executor="hybrid", n_threads=2, shard_threshold=0
            )
            scratch = [
                r.variant for r in base.record.records if r.reused_from is None
            ]
            reused = [
                r.variant
                for r in base.record.records
                if r.reused_from is not None
            ]
            assert len(scratch) >= 2 and reused, (
                "scenario needs sharded scratch roots and a reuse chain"
            )
            stall_v, corrupt_v = scratch[0], scratch[1]
            crash_v = reused[0]
            crash_idx = list(VSET12).index(crash_v)
            corrupt_idx = list(VSET12).index(corrupt_v)
            plan = FaultPlan(
                [
                    # A shard worker wedges mid-task (heartbeat freezes).
                    FaultSpec(
                        "stall", -1,
                        task=f"shard:{stall_v.eps:g}/{stall_v.minpts}#0",
                        attempt=0, phase="start", hang_s=30.0,
                    ),
                    # A variant worker crash-loops (two worker deaths).
                    FaultSpec("kill", crash_idx, attempt=0, phase="start"),
                    FaultSpec("kill", crash_idx, attempt=1, phase="start"),
                    # One merge produces a corrupt stitched result.
                    FaultSpec(
                        "corrupt", corrupt_idx, attempt=0, phase="finish"
                    ),
                ]
            )
            batch = s.run(
                VSET12, executor="hybrid", n_threads=2, shard_threshold=0,
                fault_plan=plan,
                retry_policy=RetryPolicy(max_retries=2, deadline_s=120.0),
                supervise=AUTONOMOUS,
            )
        # Healed without intervention: every variant present, labels
        # identical to the fault-free run.
        assert set(batch.results) == set(base.results)
        assert_byte_equal(batch, base, VSET12)
        report = batch.report

        # Every injected calamity shows up as a typed anomaly with an
        # action, a risk score, and (when applied) a verifier outcome.
        kinds = remediation_kinds(report)
        assert {"stuck-task", "merge-corruption", "shm-leak"} <= kinds
        assert "crash-loop" in kinds or any(
            r.action is not None and r.action.kind == "replan-chain"
            for r in report.remediations
        )
        for rec in report.remediations:
            row = rec.as_dict()
            assert row["anomaly"]["kind"] in ANOMALY_KINDS
            if row["action"] is not None:
                assert 0.0 <= row["action"]["risk"] <= 1.0
        applied = applied_records(report)
        assert applied and all(r.verdict == "verified" for r in applied)

        # Every applied action is paired with a supervise.verify span
        # carrying its record id.
        spans = tracer.records()
        verified_rids = {
            r.args["rid"] for r in spans if r.name == "supervise.verify"
        }
        assert {r.rid for r in applied} <= verified_rids

        # The forged orphan was reclaimed during finalize...
        reclaims = [
            r
            for r in applied
            if r.action.kind == "reclaim-segment"
            and r.anomaly.subject == orphan_segment
        ]
        assert reclaims and reclaims[0].verdict == "verified"

        # ...so the doctor reports a clean machine.
        from repro.cli import main as cli_main

        assert cli_main(["doctor", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["orphaned"] == 0 and doc["anomalies"] == []

        # And the registry folds the supervise events in.
        reg = MetricsRegistry.from_batch(batch, tracer)
        events = reg.supervise_events()
        assert events.get("apply", 0) >= len(applied)
        assert events.get("verify", 0) >= len(applied)
        assert reg.meta["remediations"]["applied"] == len(applied)


# ----------------------------------------------------------------------
# doctor --watch / --json
# ----------------------------------------------------------------------
class TestDoctorWatch:
    def test_watch_clean_exits_zero(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["doctor", "--watch", "--interval", "0.01",
                       "--max-polls", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("ok:") == 2

    def test_watch_reports_orphan_and_exits_nonzero(
        self, orphan_segment, capsys
    ):
        from repro.cli import main as cli_main

        rc = cli_main(["doctor", "--watch", "--interval", "0.01",
                       "--max-polls", "1"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "shm-leak" in out and orphan_segment in out

    def test_watch_unlink_reclaims(self, orphan_segment, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["doctor", "--watch", "--unlink", "--interval", "0.01",
                       "--max-polls", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"reclaimed {orphan_segment}" in out
        assert orphan_segment not in _repro_segments()

    def test_json_schema_is_additive(self, orphan_segment, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["doctor", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        # Original keys stay (schema-stable for existing consumers)...
        assert {"segments", "orphaned", "removed"} <= set(doc)
        # ...new keys ride along.
        assert doc["schema"] == 2
        leaks = [a for a in doc["anomalies"] if a["subject"] == orphan_segment]
        assert leaks and leaks[0]["kind"] == "shm-leak"
