"""Shard-equivalence suite: region-parallel DBSCAN must equal serial.

The sharded path (:mod:`repro.core.shard` + the ``sharded`` executor)
re-derives every variant's clustering from spatially partitioned slabs
with eps-width halos and a cross-border union-find merge.  Its one
contract is *exactness*: labels and core masks are **byte-identical**
to the serial kernels, for every index kind, kernel, scheduler, reuse
policy, and region count — including the degenerate geometries where
sharding earns nothing (one region, more regions than points, halos
swallowing the whole database, empty stripes from duplicate
coordinates).

Covers, in order:

* partition planning (:func:`resolve_n_regions`, :func:`plan_shards`)
  and halo geometry (:func:`shard_members`) — ownership is an exact
  partition, boundary points appear in *both* adjacent slabs;
* randomized shard-equivalence properties (Hypothesis) across
  kernel x region-count grids, plus metamorphic translation /
  permutation invariance;
* the executor-level matrix: ``sharded`` vs ``serial`` across every
  scheduler x reuse-policy combination and the index-kind oracle grid;
* differential quality vs scikit-learn when installed (>= 0.998);
* resilience: a killed shard worker recovers region-by-region to the
  exact fault-free labels, with zero leaked shared-memory segments.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dbscan import dbscan
from repro.core.result import ClusteringResult, relabel_dense
from repro.core.reuse import POLICIES
from repro.core.scheduling import SCHEDULERS
from repro.core.shard import (
    cluster_shard,
    merge_shards,
    plan_shards,
    resolve_n_regions,
    shard_members,
    sharded_dbscan,
)
from repro.core.variants import Variant, VariantSet
from repro.engine.factory import INDEX_KINDS
from repro.engine.session import Session
from repro.exec import EXECUTORS, ShardedExecutor
from repro.index.brute import BruteForceIndex
from repro.index.cellgraph import CellGraphIndex
from repro.index.grid import UniformGridIndex
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree
from repro.metrics.quality import quality_score
from repro.resilience import FaultPlan, FaultSpec, RetryPolicy, VariantStatus
from repro.util.rng import resolve_rng

QUALITY_BAR = 0.998

KERNELS = ["bfs", "cellgraph"]


def canonical(labels: np.ndarray) -> np.ndarray:
    return relabel_dense(np.asarray(labels))[0]


def _repro_segments() -> set[str]:
    return {p.rsplit("/", 1)[-1] for p in glob.glob("/dev/shm/repro_*")}


def make_cloud(seed: int, n: int = 400) -> np.ndarray:
    """A mixed-density cloud: two blobs plus uniform scatter."""
    g = resolve_rng(seed)
    return np.ascontiguousarray(
        np.vstack(
            [
                g.normal(0.0, 0.6, (n // 2, 2)),
                g.normal((5.0, 4.0), 0.8, (n // 4, 2)),
                g.uniform(-3.0, 8.0, (n - n // 2 - n // 4, 2)),
            ]
        )
    )


def assert_exact(points, eps, minpts, *, regions, kernel="bfs"):
    """Sharded output must be byte-identical to the serial kernel."""
    ref = dbscan(points, eps, minpts)
    got = sharded_dbscan(points, eps, minpts, regions=regions, kernel=kernel)
    assert np.array_equal(got.labels, ref.labels), (
        f"labels diverged (eps={eps}, minpts={minpts}, "
        f"regions={regions}, kernel={kernel})"
    )
    assert np.array_equal(got.core_mask, ref.core_mask), (
        f"core mask diverged (eps={eps}, minpts={minpts}, "
        f"regions={regions}, kernel={kernel})"
    )
    return got


# ----------------------------------------------------------------------
# partition planning
# ----------------------------------------------------------------------
class TestPlanning:
    def test_regions_wins_over_part_size(self):
        # mutual exclusion is enforced at the Session/executor layer;
        # the resolver itself lets an explicit region count win
        assert resolve_n_regions(100, 4, 25) == 4

    def test_part_size_derives_ceil(self):
        assert resolve_n_regions(100, None, 30) == 4
        assert resolve_n_regions(90, None, 30) == 3
        assert resolve_n_regions(1, None, 30) == 1

    def test_default_when_unset(self):
        assert resolve_n_regions(100, None, None) == 1
        assert resolve_n_regions(100, None, None, default=8) == 8

    def test_empty_database_plans_one_region(self):
        plan = plan_shards(np.empty((0, 2)), 0.5, 8)
        assert plan.n_regions == 1
        assert plan.cuts == ()

    def test_cuts_are_sorted_and_interior(self):
        pts = make_cloud(3)
        plan = plan_shards(pts, 0.4, 5)
        cuts = np.asarray(plan.cuts)
        assert np.all(np.diff(cuts) >= 0)
        coord = pts[:, plan.axis]
        assert cuts.min() >= coord.min() and cuts.max() <= coord.max()

    def test_axis_is_wider_spread(self):
        g = resolve_rng(5)
        wide_x = np.column_stack([g.uniform(0, 100, 200), g.uniform(0, 1, 200)])
        assert plan_shards(wide_x, 0.5, 4).axis == 0
        assert plan_shards(wide_x[:, ::-1].copy(), 0.5, 4).axis == 1

    def test_ownership_is_exact_partition(self):
        pts = make_cloud(7)
        plan = plan_shards(pts, 0.4, 6)
        seen = np.zeros(len(pts), dtype=int)
        for region in range(plan.n_regions):
            owned, slab = shard_members(pts, plan, region)
            seen[owned] += 1
            # owned always rides inside its own slab
            assert np.all(np.isin(owned, slab))
        assert np.all(seen == 1), "every point owned exactly once"


# ----------------------------------------------------------------------
# halo geometry
# ----------------------------------------------------------------------
class TestHaloGeometry:
    def test_boundary_points_in_both_slabs(self):
        """Any point within eps of a cut is in both adjacent halos."""
        pts = make_cloud(11)
        eps = 0.5
        plan = plan_shards(pts, eps, 4)
        coord = pts[:, plan.axis]
        slabs = [set(shard_members(pts, plan, r)[1].tolist())
                 for r in range(plan.n_regions)]
        for cut_pos, cut in enumerate(plan.cuts):
            left, right = cut_pos, cut_pos + 1
            near = np.flatnonzero(np.abs(coord - cut) <= eps)
            assert near.size, "expected boundary points near every cut"
            for i in near:
                # the defining property: both sides see it
                assert int(i) in slabs[left] and int(i) in slabs[right]

    def test_halo_width_scales_with_eps(self):
        pts = make_cloud(13)
        plan = plan_shards(pts, 0.2, 3)
        slim = sum(len(shard_members(pts, plan, r)[1])
                   for r in range(plan.n_regions))
        wide_plan = plan.with_eps(1.5)
        wide = sum(len(shard_members(pts, wide_plan, r)[1])
                   for r in range(wide_plan.n_regions))
        assert wide > slim

    def test_translation_invariance(self):
        """Shifting the whole database must not change the clustering."""
        pts = make_cloud(17, n=300)
        base = sharded_dbscan(pts, 0.5, 4, regions=3)
        shifted = sharded_dbscan(pts + [113.0, -77.0], 0.5, 4, regions=3)
        assert np.array_equal(base.labels, shifted.labels)
        assert np.array_equal(base.core_mask, shifted.core_mask)

    def test_permutation_invariance(self):
        """Row order must not change the partition (canonically)."""
        pts = make_cloud(19, n=300)
        perm = resolve_rng(23).permutation(len(pts))
        base = sharded_dbscan(pts, 0.5, 4, regions=3)
        shuffled = sharded_dbscan(pts[perm], 0.5, 4, regions=3)
        assert np.array_equal(
            canonical(base.labels[perm]), canonical(shuffled.labels)
        )
        assert np.array_equal(base.core_mask[perm], shuffled.core_mask)


# ----------------------------------------------------------------------
# randomized shard equivalence (the property suite)
# ----------------------------------------------------------------------
seeds = st.integers(0, 2**20)
eps_vals = st.sampled_from([0.3, 0.5, 0.8, 1.2])
minpts_vals = st.sampled_from([1, 3, 4, 8])
region_counts = st.sampled_from([1, 2, 3, 5, 8])


class TestShardEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(seeds, eps_vals, minpts_vals, region_counts,
           st.sampled_from(KERNELS))
    def test_random_grids_byte_equal(self, seed, eps, minpts, regions, kernel):
        pts = make_cloud(seed, n=220)
        assert_exact(pts, eps, minpts, regions=regions, kernel=kernel)

    @settings(max_examples=10, deadline=None)
    @given(seeds, st.sampled_from(KERNELS))
    def test_more_regions_than_points(self, seed, kernel):
        pts = make_cloud(seed, n=12)
        assert_exact(pts, 0.6, 3, regions=40, kernel=kernel)

    @settings(max_examples=10, deadline=None)
    @given(seeds, st.sampled_from(KERNELS))
    def test_all_points_inside_one_halo(self, seed, kernel):
        """eps wider than the extent: every slab is the whole database."""
        pts = make_cloud(seed, n=80)
        extent = float(np.ptp(pts, axis=0).max())
        assert_exact(pts, extent + 1.0, 4, regions=4, kernel=kernel)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_single_region_is_serial(self, kernel):
        pts = make_cloud(29)
        assert_exact(pts, 0.5, 4, regions=1, kernel=kernel)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_duplicate_points_make_empty_stripes(self, kernel):
        """50 identical points: all cuts coincide, most stripes empty."""
        pts = np.full((50, 2), 3.25)
        assert_exact(pts, 0.5, 4, regions=8, kernel=kernel)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_collinear_points(self, kernel):
        ys = resolve_rng(31).uniform(0.0, 40.0, 200)
        pts = np.column_stack([np.zeros(200), ys])
        assert_exact(pts, 0.8, 3, regions=5, kernel=kernel)

    def test_empty_database(self):
        res = sharded_dbscan(np.empty((0, 2)), 0.5, 4, regions=4)
        assert res.n_points == 0 and res.n_clusters == 0

    def test_single_point(self):
        res = sharded_dbscan(np.asarray([[1.0, 2.0]]), 0.5, 1, regions=4)
        assert res.n_clusters == 1

    def test_part_size_routing(self):
        pts = make_cloud(37, n=200)
        ref = dbscan(pts, 0.5, 4)
        got = sharded_dbscan(pts, 0.5, 4, part_size=30)
        assert np.array_equal(got.labels, ref.labels)

    def test_merge_rejects_incomplete_cover(self):
        pts = make_cloud(41, n=100)
        plan = plan_shards(pts, 0.5, 3)
        pieces = [cluster_shard(pts, plan, r, 4) for r in range(2)]
        with pytest.raises(ValueError):
            merge_shards(pts, plan, pieces)


# ----------------------------------------------------------------------
# index-kind oracle grid
# ----------------------------------------------------------------------
def _build_index(points, kind, eps):
    if kind == "rtree":
        return RTree(points, r=1)
    if kind == "grid":
        return UniformGridIndex(points, cell_width=eps)
    if kind == "cellgraph":
        return CellGraphIndex(points, eps)
    if kind == "kdtree":
        return KDTree(points)
    return BruteForceIndex(points)


class TestIndexKindOracle:
    @pytest.mark.parametrize("kind", sorted(INDEX_KINDS))
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_exact_vs_every_index_kind(self, kind, kernel):
        """Sharded output equals serial DBSCAN under every index kind."""
        pts = make_cloud(43, n=250)
        eps, minpts = 0.5, 4
        ref = dbscan(pts, eps, minpts, index=_build_index(pts, kind, eps))
        got = sharded_dbscan(pts, eps, minpts, regions=3, kernel=kernel)
        assert np.array_equal(got.labels, ref.labels)
        assert np.array_equal(got.core_mask, ref.core_mask)


# ----------------------------------------------------------------------
# executor-level matrix
# ----------------------------------------------------------------------
EXEC_VSET = VariantSet.from_product([0.45, 0.7], [4, 8])


@pytest.fixture(scope="module")
def exec_cloud():
    return make_cloud(47, n=500)


@pytest.fixture(scope="module")
def exec_oracle(exec_cloud):
    return {v: dbscan(exec_cloud, v.eps, v.minpts) for v in EXEC_VSET}


class TestShardedExecutor:
    def test_registered(self):
        assert EXECUTORS["sharded"] is ShardedExecutor

    def test_regions_and_part_size_mutually_exclusive(self):
        with pytest.raises(ValueError):
            ShardedExecutor(regions=2, part_size=100)
        with pytest.raises(ValueError):
            Session(np.zeros((4, 2)), regions=2, part_size=100)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_byte_equal_vs_serial_kernel(self, exec_cloud, exec_oracle, kernel):
        with Session(exec_cloud) as s:
            batch = s.run(
                EXEC_VSET, executor="sharded", n_threads=2,
                regions=3, kernel=kernel,
            )
        for v in EXEC_VSET:
            assert np.array_equal(batch[v].labels, exec_oracle[v].labels)
            assert np.array_equal(batch[v].core_mask, exec_oracle[v].core_mask)

    @pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    def test_scheduler_policy_matrix(
        self, exec_cloud, exec_oracle, scheduler_name, policy_name
    ):
        """Ordering knobs must never change sharded output."""
        with Session(
            exec_cloud,
            scheduler=SCHEDULERS[scheduler_name],
            reuse_policy=POLICIES[policy_name],
        ) as s:
            batch = s.run(EXEC_VSET, executor="sharded", n_threads=2, regions=2)
        for v in EXEC_VSET:
            assert np.array_equal(batch[v].labels, exec_oracle[v].labels)

    def test_session_default_knobs_thread_through(self, exec_cloud, exec_oracle):
        v = Variant(0.45, 4)
        with Session(exec_cloud, part_size=120) as s:
            batch = s.run(VariantSet([v]), executor="sharded", n_threads=2)
        assert np.array_equal(batch[v].labels, exec_oracle[v].labels)

    def test_executor_instance_knobs_thread_through(self, exec_cloud, exec_oracle):
        v = Variant(0.45, 4)
        ex = ShardedExecutor(n_threads=2, regions=4)
        batch = ex.run(exec_cloud, VariantSet([v]))
        assert np.array_equal(batch[v].labels, exec_oracle[v].labels)

    def test_records_account_every_variant(self, exec_cloud):
        with Session(exec_cloud) as s:
            batch = s.run(EXEC_VSET, executor="sharded", n_threads=2, regions=2)
        ran = sorted(r.variant.as_tuple() for r in batch.record.records)
        assert ran == sorted(v.as_tuple() for v in EXEC_VSET)
        for r in batch.record.records:
            assert r.reused_from is None  # sharding forfeits reuse
            assert r.finish >= r.start >= 0.0
        assert batch.record.makespan == pytest.approx(
            max(r.finish for r in batch.record.records)
        )


# ----------------------------------------------------------------------
# differential quality (sklearn-gated)
# ----------------------------------------------------------------------
class TestShardedDifferential:
    def test_quality_vs_sklearn(self, exec_cloud):
        cluster_mod = pytest.importorskip(
            "sklearn.cluster",
            reason="scikit-learn not installed in this environment",
        )
        for v in EXEC_VSET:
            sk = cluster_mod.DBSCAN(eps=v.eps, min_samples=v.minpts).fit(
                exec_cloud
            )
            labels = np.asarray(sk.labels_, dtype=np.int64)
            core = np.zeros(labels.shape[0], dtype=bool)
            core[sk.core_sample_indices_] = True
            sk_result = ClusteringResult(labels, core, variant=v)
            ours = sharded_dbscan(exec_cloud, v.eps, v.minpts, regions=4)
            q = quality_score(sk_result, ours)
            assert q >= QUALITY_BAR, (
                f"variant {v}: sharded vs sklearn quality {q:.5f}"
            )
            assert np.array_equal(core, ours.core_mask)


# ----------------------------------------------------------------------
# resilience: a dead shard is a re-plannable unit
# ----------------------------------------------------------------------
class TestShardedResilience:
    @pytest.fixture(scope="class")
    def cloud(self):
        return make_cloud(53, n=600)

    @pytest.fixture(scope="class")
    def oracle(self, cloud):
        return {v: dbscan(cloud, v.eps, v.minpts) for v in EXEC_VSET}

    def test_killed_shard_recovers_exactly(self, cloud, oracle):
        before = _repro_segments()
        plan = FaultPlan([FaultSpec("kill", 0)])
        with Session(cloud) as s:
            batch = s.run(
                EXEC_VSET, executor="sharded", n_threads=2, regions=3,
                retry_policy=RetryPolicy(max_retries=2), fault_plan=plan,
            )
        for v in EXEC_VSET:
            assert np.array_equal(batch[v].labels, oracle[v].labels)
        target = list(EXEC_VSET)[0]
        out = batch.report.outcomes[target]
        assert out.status is VariantStatus.RETRIED
        assert out.attempts >= 2
        assert batch.report.complete
        # no leaked shared-memory segments (the `repro doctor` contract)
        assert _repro_segments() <= before

    def test_corrupt_merge_retries_whole_variant(self, cloud, oracle):
        plan = FaultPlan([FaultSpec("corrupt", 1, phase="finish")])
        with Session(cloud) as s:
            batch = s.run(
                EXEC_VSET, executor="sharded", n_threads=2, regions=2,
                retry_policy=RetryPolicy(max_retries=2), fault_plan=plan,
            )
        for v in EXEC_VSET:
            assert np.array_equal(batch[v].labels, oracle[v].labels)
        target = list(EXEC_VSET)[1]
        assert batch.report.outcomes[target].status is VariantStatus.RETRIED

    def test_budget_exhaustion_fails_only_that_variant(self, cloud, oracle):
        plan = FaultPlan([
            FaultSpec("crash", 0, attempt=a) for a in range(4)
        ])
        with Session(cloud) as s:
            batch = s.run(
                EXEC_VSET, executor="sharded", n_threads=2, regions=2,
                retry_policy=RetryPolicy(max_retries=1), fault_plan=plan,
            )
        target = list(EXEC_VSET)[0]
        assert target not in batch.results
        assert batch.report.outcomes[target].status is VariantStatus.FAILED
        for v in EXEC_VSET:
            if v is target:
                continue
            assert np.array_equal(batch[v].labels, oracle[v].labels)

    def test_doctor_reports_no_orphans_after_kills(self, cloud):
        from repro.resilience.audit import scan_segments

        plan = FaultPlan([FaultSpec("kill", 0)])
        v = Variant(0.45, 4)
        with Session(cloud) as s:
            s.run(
                VariantSet([v]), executor="sharded", n_threads=2, regions=2,
                retry_policy=RetryPolicy(max_retries=2), fault_plan=plan,
            )
        assert sum(1 for seg in scan_segments() if seg.orphaned) == 0
