"""Tests for the report runner and the extended CLI subcommands."""

from __future__ import annotations

import pytest

from repro.bench.runner import run_full_report
from repro.cli import main

TINY = 0.001


class TestRunner:
    def test_full_report_structure(self, tmp_path):
        out = tmp_path / "REPORT.md"
        text = run_full_report(TINY, TINY, output=str(out), quick=True)
        assert out.exists()
        for section in (
            "# VariantDBSCAN evaluation report",
            "## Table I",
            "## Figure 3",
            "## Figure 4",
            "## Figures 5/6",
            "## Figure 7",
            "## Figure 8",
            "## Figure 9",
        ):
            assert section in text
        # markdown tables present
        assert text.count("|---") >= 5

    def test_report_without_output_is_returned_only(self):
        text = run_full_report(TINY, TINY, quick=True)
        assert "SCHEDGREEDY" in text


class TestCliExtras:
    def test_figure_fig2(self, capsys):
        assert main(["figure", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "points_reused" in out

    def test_figure_fig3(self, capsys):
        assert main(["figure", "fig3"]) == 0
        assert "(0.2,32)" in capsys.readouterr().out

    def test_optics_command(self, capsys):
        rc = main(
            [
                "optics",
                "cF_10k_5N",
                "--scale",
                "0.06",
                "--delta",
                "3.0",
                "--minpts",
                "4",
                "--eps",
                "1.5,3.0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "OPTICS pass" in out
        assert "eps=1.5" in out

    def test_calibrate_command(self, capsys):
        rc = main(["calibrate", "cF_10k_5N", "--scale", "0.06", "--eps", "2.0"])
        assert rc == 0
        assert "candidate_cost" in capsys.readouterr().out

    def test_report_command(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        rc = main(["report", "--scale", str(TINY), "--heavy-scale", str(TINY), "-o", str(out)])
        assert rc == 0
        assert out.exists()
