"""Tests for the project-native static analysis suite (``repro check``).

Every rule gets a positive case (a synthetic module that violates the
invariant), a negative case (compliant code stays clean), and a
pragma-suppression case.  The suite closes with the self-check: the
shipped package must be clean under an empty baseline, which is the
exact gate CI runs via ``repro check --strict``.
"""

from __future__ import annotations

import json

import pytest

from repro import analysis
from repro.analysis.engine import module_name_for
from repro.analysis.pragmas import parse_pragmas, suppresses
from repro.analysis.rules import (
    ExecutorContractRule,
    HotPathPurityRule,
    LayeringRule,
    RngDisciplineRule,
    ShmLifecycleRule,
    WallclockDisciplineRule,
)
from repro.cli import main as cli_main


def check(sources, rules, baseline=None):
    return analysis.analyze_source(sources, rules=rules, baseline=baseline)


def rule_ids(report):
    return [f.rule for f in report.findings]


# ---------------------------------------------------------------------------
# layering
# ---------------------------------------------------------------------------


class TestLayeringRule:
    def test_core_importing_exec_is_flagged(self):
        report = check(
            {"repro.core.widget": "from repro.exec.base import BaseExecutor\n"},
            [LayeringRule],
        )
        assert rule_ids(report) == ["layering"]
        assert "repro.exec" in report.findings[0].message

    @pytest.mark.parametrize("upper", ["exec", "engine", "resilience", "obs", "cli"])
    def test_every_upper_layer_is_forbidden(self, upper):
        for layer in ("core", "index", "metrics"):
            report = check(
                {f"repro.{layer}.x": f"import repro.{upper}\n"}, [LayeringRule]
            )
            assert rule_ids(report) == ["layering"], (layer, upper)

    def test_util_importing_anything_above_is_flagged(self):
        report = check(
            {"repro.util.helper": "from repro.core.dbscan import dbscan\n"},
            [LayeringRule],
        )
        assert rule_ids(report) == ["layering"]
        assert "bottom layer" in report.findings[0].message

    def test_allowed_imports_are_clean(self):
        report = check(
            {
                "repro.core.widget": (
                    "from repro.index.rtree import RTree\n"
                    "from repro.util.tracing import Tracer\n"
                    "from repro.metrics.counters import WorkCounters\n"
                ),
                "repro.util.helper": "from repro.util.errors import ValidationError\n",
                "repro.engine.thing": "from repro.exec.base import BaseExecutor\n",
            },
            [LayeringRule],
        )
        assert report.findings == []

    def test_type_checking_imports_are_exempt(self):
        source = (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.exec.base import BatchResult\n"
        )
        report = check({"repro.core.widget": source}, [LayeringRule])
        assert report.findings == []

    def test_pragma_suppresses(self):
        source = "import repro.obs  # repro: allow[layering]\n"
        report = check({"repro.core.widget": source}, [LayeringRule])
        assert report.findings == []
        assert report.suppressed == 1


# ---------------------------------------------------------------------------
# rng-discipline
# ---------------------------------------------------------------------------


class TestRngDisciplineRule:
    def test_np_random_call_is_flagged(self):
        report = check(
            {"repro.data.gen": "import numpy as np\nrng = np.random.default_rng(3)\n"},
            [RngDisciplineRule],
        )
        assert rule_ids(report) == ["rng-discipline"]

    def test_stdlib_random_import_is_flagged(self):
        report = check({"repro.data.gen": "import random\n"}, [RngDisciplineRule])
        assert rule_ids(report) == ["rng-discipline"]
        report = check(
            {"repro.data.gen": "from random import shuffle\n"}, [RngDisciplineRule]
        )
        assert rule_ids(report) == ["rng-discipline"]

    def test_seedless_default_rng_flagged_even_in_util_rng(self):
        report = check(
            {
                "repro.util.rng": (
                    "import numpy as np\n"
                    "def fresh():\n"
                    "    return np.random.default_rng()\n"
                )
            },
            [RngDisciplineRule],
        )
        assert rule_ids(report) == ["rng-discipline"]
        assert "seedless" in report.findings[0].message

    def test_util_rng_itself_may_call_numpy_random(self):
        report = check(
            {
                "repro.util.rng": (
                    "import numpy as np\n"
                    "def resolve_rng(seed):\n"
                    "    return np.random.default_rng(seed)\n"
                )
            },
            [RngDisciplineRule],
        )
        assert report.findings == []

    def test_annotation_is_not_a_call(self):
        source = (
            "import numpy as np\n"
            "def sizes(rng: np.random.Generator) -> int:\n"
            "    return 1\n"
        )
        report = check({"repro.data.gen": source}, [RngDisciplineRule])
        assert report.findings == []

    def test_resolve_rng_usage_is_clean(self):
        source = (
            "from repro.util.rng import resolve_rng\n"
            "rng = resolve_rng(42)\n"
        )
        report = check({"repro.data.gen": source}, [RngDisciplineRule])
        assert report.findings == []

    def test_pragma_suppresses(self):
        source = (
            "import numpy as np\n"
            "x = np.random.default_rng(1)  # repro: allow[rng-discipline]\n"
        )
        report = check({"repro.data.gen": source}, [RngDisciplineRule])
        assert report.findings == []
        assert report.suppressed == 1


# ---------------------------------------------------------------------------
# shm-lifecycle
# ---------------------------------------------------------------------------


class TestShmLifecycleRule:
    def test_direct_construction_is_flagged(self):
        source = (
            "from multiprocessing import shared_memory\n"
            "seg = shared_memory.SharedMemory(create=True, size=64)\n"
        )
        report = check({"repro.exec.rogue": source}, [ShmLifecycleRule])
        ids = rule_ids(report)
        assert "shm-lifecycle" in ids
        # Both the import and the construction are flagged.
        assert len(ids) == 2

    def test_unlink_outside_shm_module_is_flagged(self):
        source = "def teardown(idx_shm):\n    idx_shm.unlink()\n"
        report = check({"repro.exec.rogue": source}, [ShmLifecycleRule])
        assert rule_ids(report) == ["shm-lifecycle"]

    def test_path_unlink_is_not_flagged(self):
        source = "def rm(path):\n    path.unlink()\n"
        report = check({"repro.resilience.files": source}, [ShmLifecycleRule])
        assert report.findings == []

    def test_engine_shm_module_is_exempt(self):
        source = (
            "from multiprocessing import shared_memory\n"
            "def create(size):\n"
            "    shm = shared_memory.SharedMemory(create=True, size=size)\n"
            "    return shm\n"
        )
        report = check({"repro.engine.shm": source}, [ShmLifecycleRule])
        assert report.findings == []

    def test_ensure_shared_without_close_path_is_flagged(self):
        source = "def run(store):\n    return store.ensure_shared()\n"
        report = check({"repro.exec.rogue": source}, [ShmLifecycleRule])
        assert rule_ids(report) == ["shm-lifecycle"]
        assert "close" in report.findings[0].message

    def test_ensure_shared_with_close_path_is_clean(self):
        source = (
            "def run(store):\n"
            "    handle = store.ensure_shared()\n"
            "    try:\n"
            "        return handle\n"
            "    finally:\n"
            "        store.close()\n"
        )
        report = check({"repro.exec.ok": source}, [ShmLifecycleRule])
        assert report.findings == []

    def test_pragma_suppresses(self):
        source = "def teardown(idx_shm):\n    idx_shm.unlink()  # repro: allow[shm-lifecycle]\n"
        report = check({"repro.exec.rogue": source}, [ShmLifecycleRule])
        assert report.findings == []


# ---------------------------------------------------------------------------
# wallclock-discipline
# ---------------------------------------------------------------------------


class TestWallclockDisciplineRule:
    def test_time_time_call_is_flagged(self):
        source = "import time\nt0 = time.time()\n"
        report = check({"repro.exec.timed": source}, [WallclockDisciplineRule])
        assert rule_ids(report) == ["wallclock-discipline"]

    def test_from_time_import_time_is_flagged(self):
        report = check(
            {"repro.exec.timed": "from time import time\n"},
            [WallclockDisciplineRule],
        )
        assert rule_ids(report) == ["wallclock-discipline"]

    def test_perf_counter_is_clean(self):
        source = (
            "import time\n"
            "t0 = time.perf_counter()\n"
            "from time import perf_counter\n"
        )
        report = check({"repro.exec.timed": source}, [WallclockDisciplineRule])
        assert report.findings == []

    def test_pragma_suppresses(self):
        source = "import time\nstamp = time.time()  # repro: allow[wallclock-discipline] log timestamp\n"
        report = check({"repro.obs.logts": source}, [WallclockDisciplineRule])
        assert report.findings == []


# ---------------------------------------------------------------------------
# executor-contract
# ---------------------------------------------------------------------------

_BASE_MODULE = """
import abc

class BaseExecutor(abc.ABC):
    def make_context(self, store, indexes, *, dataset=""):
        pass

    def run(self, points, variants, *, indexes=None, dataset=""):
        pass

    def run_context(self, ctx, variants):
        pass

    @abc.abstractmethod
    def _run(self, ctx, variants):
        pass
"""


def _backend(name, run_body="        return GraphRuntime(\"sim\").run(ctx, variants)\n",
             run_sig="self, ctx, variants", extra=""):
    return (
        "from repro.exec.base import BaseExecutor\n"
        "from repro.exec.graph import GraphRuntime\n\n"
        f"class {name}(BaseExecutor):\n"
        f"    name = \"{name.lower()}\"\n\n"
        f"    def _run({run_sig}):\n"
        f"{run_body}"
        f"{extra}"
    )


def _registry(*class_names):
    imports = "".join(
        f"from repro.exec.mod{i} import {cls}\n"
        for i, cls in enumerate(class_names)
    )
    entries = ", ".join(f"{cls}.name: {cls}" for cls in class_names)
    return imports + f"EXECUTORS = {{{entries}}}\n"


def _project(*class_names, **overrides):
    sources = {"repro.exec.base": _BASE_MODULE, "repro.exec": _registry(*class_names)}
    for i, cls in enumerate(class_names):
        sources[f"repro.exec.mod{i}"] = overrides.get(cls, _backend(cls))
    return sources


class TestExecutorContractRule:
    def test_conforming_backends_are_clean(self):
        report = check(_project("Alpha", "Beta"), [ExecutorContractRule])
        assert report.findings == []

    def test_wrong_run_signature_is_flagged(self):
        bad = _backend("Alpha", run_sig="self, ctx, variants, extra")
        report = check(_project("Alpha", Alpha=bad), [ExecutorContractRule])
        assert rule_ids(report) == ["executor-contract"]
        assert "signature" in report.findings[0].message

    def test_missing_graph_runtime_is_flagged(self):
        bad = _backend("Alpha", run_body="        return None\n")
        report = check(_project("Alpha", Alpha=bad), [ExecutorContractRule])
        assert rule_ids(report) == ["executor-contract"]
        assert "GraphRuntime" in report.findings[0].message
        assert "FaultPlan" in report.findings[0].message

    def test_private_pool_spawn_is_flagged(self):
        sources = _project("Alpha")
        sources["repro.exec.mod0"] = _backend(
            "Alpha",
            extra=(
                "\nfrom concurrent.futures import ProcessPoolExecutor\n"
                "POOL = ProcessPoolExecutor(max_workers=2)\n"
            ),
        )
        report = check(sources, [ExecutorContractRule])
        assert rule_ids(report) == ["executor-contract", "executor-contract"]
        assert all("spawns workers" in f.message for f in report.findings)

    def test_runtime_module_may_spawn_pools(self):
        sources = _project("Alpha")
        sources["repro.exec.graph"] = (
            "import threading\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "class GraphRuntime:\n"
            "    def spawn(self):\n"
            "        threading.Thread(target=print).start()\n"
            "        return ProcessPoolExecutor(max_workers=1)\n"
        )
        report = check(sources, [ExecutorContractRule])
        assert report.findings == []

    def test_missing_run_hook_is_flagged(self):
        bad = (
            "from repro.exec.base import BaseExecutor\n"
            "class Alpha(BaseExecutor):\n"
            "    name = \"alpha\"\n"
        )
        report = check(_project("Alpha", Alpha=bad), [ExecutorContractRule])
        assert any("_run" in f.message for f in report.findings)

    def test_missing_name_attr_is_flagged(self):
        bad = (
            "from repro.exec.base import BaseExecutor\n"
            "from repro.exec.graph import GraphRuntime\n"
            "class Alpha(BaseExecutor):\n"
            "    def _run(self, ctx, variants):\n"
            "        return GraphRuntime(\"sim\").run(ctx, variants)\n"
        )
        sources = _project("Alpha", Alpha=bad)
        sources["repro.exec"] = (
            "from repro.exec.mod0 import Alpha\n"
            "EXECUTORS = {\"alpha\": Alpha}\n"
        )
        report = check(sources, [ExecutorContractRule])
        assert any("'name'" in f.message for f in report.findings)

    def test_unregistered_backend_is_flagged(self):
        sources = _project("Alpha")
        sources["repro.exec.mod9"] = _backend("Ghost")
        report = check(sources, [ExecutorContractRule])
        assert any("not registered" in f.message for f in report.findings)

    def test_hook_override_with_drifted_signature_is_flagged(self):
        drifted = _backend(
            "Alpha",
            extra="\n    def run_context(self, ctx, variants, extra=None):\n        pass\n",
        )
        report = check(_project("Alpha", Alpha=drifted), [ExecutorContractRule])
        assert any("run_context" in f.message for f in report.findings)

    def test_pragma_on_class_line_suppresses(self):
        bad = (
            "from repro.exec.base import BaseExecutor\n"
            "class Alpha(BaseExecutor):  # repro: allow[executor-contract]\n"
            "    name = \"alpha\"\n"
        )
        sources = {
            "repro.exec.base": _BASE_MODULE,
            "repro.exec": "from repro.exec.mod0 import Alpha\nEXECUTORS = {Alpha.name: Alpha}\n",
            "repro.exec.mod0": bad,
        }
        report = check(sources, [ExecutorContractRule])
        assert report.findings == []
        assert report.suppressed >= 1

    # -- supervision discipline ---------------------------------------
    def test_rogue_heartbeat_emitter_is_flagged(self):
        sources = _project("Alpha")
        sources["repro.engine.rogue"] = (
            "from repro.supervise.signals import worker_pulse\n"
            "pulse = worker_pulse(None)\n"
        )
        report = check(sources, [ExecutorContractRule])
        assert rule_ids(report) == ["executor-contract"]
        assert "worker_pulse" in report.findings[0].message
        assert "repro.exec.graph" in report.findings[0].message

    def test_runtime_and_signals_may_emit_heartbeats(self):
        sources = _project("Alpha")
        sources["repro.exec.graph"] = (
            "from repro.supervise.signals import worker_pulse\n"
            "class GraphRuntime:\n"
            "    def go(self, handle):\n"
            "        return worker_pulse(handle)\n"
        )
        sources["repro.supervise.signals"] = (
            "def worker_pulse(handle):\n"
            "    return None\n"
            "PULSE = worker_pulse(None)\n"
        )
        report = check(sources, [ExecutorContractRule])
        assert report.findings == []

    def test_adhoc_action_construction_is_flagged(self):
        sources = _project("Alpha")
        sources["repro.resilience.rogue"] = (
            "from repro.supervise.remedy import Action\n"
            "FIX = Action('degrade', target='group:g0')\n"
        )
        report = check(sources, [ExecutorContractRule])
        assert rule_ids(report) == ["executor-contract"]
        assert "Action" in report.findings[0].message
        assert "repro.supervise.remedy" in report.findings[0].message

    def test_proposer_registry_may_construct_actions(self):
        sources = _project("Alpha")
        sources["repro.supervise.remedy"] = (
            "class Action:\n"
            "    def __init__(self, kind, target=''):\n"
            "        self.kind = kind\n"
            "def propose():\n"
            "    return [Action('respawn-lane')]\n"
        )
        report = check(sources, [ExecutorContractRule])
        assert report.findings == []


# ---------------------------------------------------------------------------
# hot-path-purity
# ---------------------------------------------------------------------------


class TestHotPathPurityRule:
    def test_for_loop_in_batch_kernel_is_flagged(self):
        source = (
            "def query_candidates_batch(mbbs):\n"
            "    out = []\n"
            "    for i in range(len(mbbs)):\n"
            "        out.append(i)\n"
            "    return out\n"
        )
        report = check({"repro.index.fancy": source}, [HotPathPurityRule])
        assert rule_ids(report) == ["hot-path-purity"]

    def test_comprehension_in_batch_kernel_is_flagged(self):
        source = (
            "def _batch_descend(mbbs):\n"
            "    return [m for m in mbbs]\n"
        )
        report = check({"repro.index.fancy": source}, [HotPathPurityRule])
        assert rule_ids(report) == ["hot-path-purity"]

    def test_tolist_in_index_module_is_flagged(self):
        source = "def helper(arr):\n    return arr.tolist()\n"
        report = check({"repro.index.fancy": source}, [HotPathPurityRule])
        assert rule_ids(report) == ["hot-path-purity"]

    def test_loop_outside_batch_function_is_clean(self):
        source = (
            "def build(points):\n"
            "    for p in points:\n"
            "        pass\n"
        )
        report = check({"repro.index.fancy": source}, [HotPathPurityRule])
        assert report.findings == []

    def test_loop_outside_index_package_is_clean(self):
        source = (
            "def run_batch(items):\n"
            "    for x in items:\n"
            "        pass\n"
        )
        report = check({"repro.core.batchy": source}, [HotPathPurityRule])
        assert report.findings == []

    def test_pragma_on_def_line_covers_whole_function(self):
        source = (
            "def query_candidates_batch(mbbs):  # repro: allow[hot-path-purity]\n"
            "    rows = [m for m in mbbs]\n"
            "    for r in rows:\n"
            "        pass\n"
        )
        report = check({"repro.index.fancy": source}, [HotPathPurityRule])
        assert report.findings == []
        assert report.suppressed == 2

    def test_level_synchronous_loop_is_pure_without_pragma(self):
        source = (
            "def _batch_descend(self, mbbs):\n"
            "    for depth in range(self.height):\n"
            "        pass\n"
        )
        report = check({"repro.index.fancy": source}, [HotPathPurityRule])
        assert report.findings == []
        assert report.suppressed == 0

    @pytest.mark.parametrize(
        "bound", ["tree.depth + 1", "n_levels", "self.tree_height"]
    )
    def test_level_word_bounds_are_pure(self, bound):
        source = (
            "def query_candidates_batch(self, mbbs):\n"
            f"    for i in range({bound}):\n"
            "        pass\n"
        )
        report = check({"repro.index.fancy": source}, [HotPathPurityRule])
        assert report.findings == []

    @pytest.mark.parametrize(
        "bound",
        [
            "len(points)",          # per-point bound
            "self.heightmap",       # 'height' only as a fragment, not a word
            "n",                    # anonymous bound
        ],
    )
    def test_non_level_range_bounds_stay_flagged(self, bound):
        source = (
            "def query_candidates_batch(self, mbbs):\n"
            f"    for i in range({bound}):\n"
            "        pass\n"
        )
        report = check({"repro.index.fancy": source}, [HotPathPurityRule])
        assert rule_ids(report) == ["hot-path-purity"]

    def test_non_range_iteration_over_levels_stays_flagged(self):
        # Only the range(<level bound>) shape is provably O(height);
        # iterating a container named 'levels' could still be per-point.
        source = (
            "def query_candidates_batch(self, mbbs):\n"
            "    for lvl in self.levels:\n"
            "        pass\n"
        )
        report = check({"repro.index.fancy": source}, [HotPathPurityRule])
        assert rule_ids(report) == ["hot-path-purity"]


# ---------------------------------------------------------------------------
# pragmas, baseline, engine plumbing
# ---------------------------------------------------------------------------


class TestPragmaParsing:
    def test_basic_and_multi_rule(self):
        source = (
            "x = 1  # repro: allow[layering]\n"
            "y = 2  # repro: allow[rng-discipline, shm-lifecycle]\n"
        )
        pragmas = parse_pragmas(source)
        assert pragmas == {
            1: {"layering"},
            2: {"rng-discipline", "shm-lifecycle"},
        }

    def test_wildcard(self):
        pragmas = parse_pragmas("x = 1  # repro: allow[*]\n")
        assert suppresses(pragmas, (1,), "anything")

    def test_pragma_inside_string_is_ignored(self):
        pragmas = parse_pragmas('s = "# repro: allow[layering]"\n')
        assert pragmas == {}

    def test_no_match_on_other_lines(self):
        pragmas = parse_pragmas("x = 1  # repro: allow[layering]\n")
        assert not suppresses(pragmas, (2,), "layering")


class TestBaselineWorkflow:
    def test_baselined_findings_do_not_fail(self, tmp_path):
        source = "import repro.obs\n"
        report = check({"repro.core.widget": source}, [LayeringRule])
        assert len(report.findings) == 1
        baseline_file = tmp_path / "baseline.txt"
        analysis.write_baseline(baseline_file, report.findings)
        keys = analysis.load_baseline(baseline_file)
        again = check({"repro.core.widget": source}, [LayeringRule], baseline=keys)
        assert again.findings == []
        assert len(again.baselined) == 1
        assert again.exit_code(strict=True) == 0

    def test_stale_baseline_fails_strict_only(self):
        keys = {"repro/core/widget.py :: layering :: long gone"}
        report = check({"repro.core.widget": "x = 1\n"}, [LayeringRule], baseline=keys)
        assert report.stale_baseline == sorted(keys)
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert analysis.load_baseline(tmp_path / "nope.txt") == set()


class TestEnginePlumbing:
    def test_module_name_for_resolves_packages(self):
        import repro.engine.shm as shm_mod

        assert module_name_for(__import__("pathlib").Path(shm_mod.__file__)) == (
            "repro.engine.shm"
        )

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-311.py").write_text("x = 1\n")
        files = analysis.iter_python_files([tmp_path])
        assert [f.name for f in files] == ["a.py"]

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = analysis.analyze_paths([bad])
        assert report.errors and not report.clean


# ---------------------------------------------------------------------------
# CLI + repo self-check
# ---------------------------------------------------------------------------


class TestCheckCli:
    def test_list_rules(self, capsys):
        assert cli_main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in analysis.RULES_BY_ID:
            assert rule_id in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        ok = tmp_path / "ok.py"
        ok.write_text("import time\nt = time.perf_counter()\n")
        assert cli_main(["check", str(ok)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violation_exits_one_and_prints_anchor(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert cli_main(["check", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:2" in out
        assert "wallclock-discipline" in out

    def test_json_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("t0 = __import__('time').time()\n")
        bad.write_text("import time\nt0 = time.time()\n")
        cli_main(["check", "--json", str(bad)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "wallclock-discipline"

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt0 = time.time()\n")
        baseline = tmp_path / "baseline.txt"
        assert cli_main(
            ["check", str(bad), "--write-baseline", str(baseline)]
        ) == 0
        capsys.readouterr()
        assert cli_main(["check", str(bad), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out


class TestRepoSelfCheck:
    def test_repo_is_clean_with_empty_baseline(self):
        """The acceptance gate: zero findings over the shipped package."""
        root = analysis.default_check_root()
        report = analysis.analyze_paths([root], relative_to=root.parent)
        assert report.errors == []
        assert report.findings == [], "\n" + "\n".join(
            analysis.format_finding(f) for f in report.findings
        )

    def test_self_check_via_cli_strict(self, capsys):
        assert cli_main(["check", "--strict"]) == 0
