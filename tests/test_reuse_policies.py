"""Tests for the cluster-seed selection policies (Section IV-C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.result import ClusteringResult
from repro.core.reuse import (
    CLUS_DEFAULT,
    CLUS_DENSITY,
    CLUS_PTS_SQUARED,
    POLICIES,
    ClusDensity,
    get_seed_list,
)


@pytest.fixture()
def handmade():
    """Three clusters with hand-computable geometry.

    * cluster 0: 4 points on a 3x3 square   -> density 4/9
    * cluster 1: 9 points on a 1x1 square   -> density 9
    * cluster 2: 25 points on a 10x10 square -> density 0.25
    """
    pts = []
    labels = []
    pts += [[0, 0], [3, 0], [0, 3], [3, 3]]
    labels += [0] * 4
    base = np.array([20.0, 20.0])
    for i in range(3):
        for j in range(3):
            pts.append((base + [i * 0.5, j * 0.5]).tolist())
    labels += [1] * 9
    for i in range(5):
        for j in range(5):
            pts.append([50 + i * 2.5, 50 + j * 2.5])
    labels += [2] * 25
    points = np.asarray(pts, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    return points, ClusteringResult(labels, labels >= 0)


class TestOrderings:
    def test_default_is_generation_order(self, handmade):
        points, result = handmade
        assert CLUS_DEFAULT.get_seed_list(result, points).tolist() == [0, 1, 2]

    def test_density_order(self, handmade):
        points, result = handmade
        # densities: 4/9 = 0.44, 9/1 = 9, 25/100 = 0.25
        assert CLUS_DENSITY.get_seed_list(result, points).tolist() == [1, 0, 2]

    def test_pts_squared_order(self, handmade):
        points, result = handmade
        # |C|^2/a: 16/9 = 1.78, 81/1 = 81, 625/100 = 6.25
        assert CLUS_PTS_SQUARED.get_seed_list(result, points).tolist() == [1, 2, 0]

    def test_eps_augmentation_demotes_tiny_clusters(self):
        """A 2-point micro-cluster outranks a real blob on raw area but
        not on the eps-augmented footprint."""
        pts = np.array(
            [[0.0, 0.0], [0.01, 0.01]]  # micro cluster, raw area ~1e-4
            + [[10 + 0.3 * i, 10 + 0.3 * j] for i in range(5) for j in range(5)]
        )
        labels = np.array([0, 0] + [1] * 25)
        res = ClusteringResult(labels, labels >= 0)
        raw = CLUS_DENSITY.get_seed_list(res, pts).tolist()
        aug = CLUS_DENSITY.get_seed_list(res, pts, eps=1.0).tolist()
        assert raw == [0, 1]
        assert aug == [1, 0]

    def test_ties_keep_generation_order(self):
        pts = np.array([[0, 0], [1, 1], [10, 10], [11, 11]], dtype=float)
        labels = np.array([0, 0, 1, 1])
        res = ClusteringResult(labels, labels >= 0)
        assert CLUS_DENSITY.get_seed_list(res, pts).tolist() == [0, 1]

    def test_no_clusters_empty_list(self):
        res = ClusteringResult(np.array([-1, -1]), np.zeros(2, bool))
        assert CLUS_DENSITY.get_seed_list(res, np.zeros((2, 2))).size == 0


class TestFilteringAndHelpers:
    def test_min_cluster_size_filter(self, handmade):
        points, result = handmade
        policy = ClusDensity(min_cluster_size=5)
        assert policy.get_seed_list(result, points).tolist() == [1, 2]

    def test_functional_wrapper_defaults_to_density(self, handmade):
        points, result = handmade
        assert get_seed_list(result, points).tolist() == [1, 0, 2]

    def test_registry_names(self):
        assert set(POLICIES) == {
            "CLUSDEFAULT",
            "CLUSDENSITY",
            "CLUSPTSSQUARED",
            "CLUSSIZE",
            "CLUSMASSDENSITY",
        }

    def test_size_policy_order(self, handmade):
        from repro.core.reuse import CLUS_SIZE

        points, result = handmade
        assert CLUS_SIZE.get_seed_list(result, points).tolist() == [2, 1, 0]

    def test_mass_density_policy_is_permutation(self, handmade):
        from repro.core.reuse import CLUS_MASS_DENSITY

        points, result = handmade
        order = CLUS_MASS_DENSITY.get_seed_list(result, points)
        assert sorted(order.tolist()) == [0, 1, 2]

    def test_repr_is_paper_name(self):
        assert repr(CLUS_DENSITY) == "CLUSDENSITY"
