"""Tests for the k-d tree index and the cost-model calibration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dbscan import dbscan
from repro.exec.calibration import CalibrationSample, collect_samples, fit_cost_model
from repro.exec.cost import CostModel
from repro.index import KDTree, RTree
from repro.index.mbb import mbb_contains_points, point_query_mbb
from repro.metrics.counters import WorkCounters
from repro.metrics.quality import quality_score
from repro.util.errors import ValidationError
from repro.util.rng import resolve_rng

coord = st.floats(-100.0, 100.0, allow_nan=False)


def brute_rect(points, mbb):
    if points.shape[0] == 0:
        return set()
    return set(np.flatnonzero(mbb_contains_points(mbb, points)).tolist())


class TestKDTree:
    @pytest.mark.parametrize("leaf_size", [1, 4, 16, 64])
    def test_rect_matches_brute_force(self, leaf_size):
        pts = resolve_rng(3).uniform(0, 60, (800, 2))
        t = KDTree(pts, leaf_size=leaf_size)
        for qx, qy, eps in [(5, 5, 2.0), (30, 30, 6.0), (59, 1, 0.5)]:
            mbb = point_query_mbb(qx, qy, eps)
            assert set(t.query_rect(mbb).tolist()) == brute_rect(pts, mbb)

    def test_empty(self):
        t = KDTree(np.empty((0, 2)))
        assert t.query_candidates(np.array([0, 0, 1, 1.0])).size == 0

    def test_duplicates(self):
        pts = np.array([[2.0, 2.0]] * 9 + [[8.0, 8.0]])
        t = KDTree(pts, leaf_size=2)
        got = t.query_rect(point_query_mbb(2, 2, 0.1))
        assert sorted(got.tolist()) == list(range(9))

    def test_counters_and_leaf_size_tradeoff(self):
        pts = resolve_rng(4).uniform(0, 100, (4000, 2))
        visits = {}
        for ls in (1, 64):
            c = WorkCounters()
            KDTree(pts, leaf_size=ls).query_candidates(point_query_mbb(50, 50, 2.0), c)
            visits[ls] = c.index_nodes_visited
        assert visits[64] < visits[1]

    def test_dbscan_over_kdtree_matches_rtree(self, two_blobs):
        ref = dbscan(two_blobs, 0.7, 4, index=RTree(two_blobs, r=1))
        got = dbscan(two_blobs, 0.7, 4, index=KDTree(two_blobs, leaf_size=8))
        assert quality_score(ref, got) == pytest.approx(1.0)

    def test_invalid_leaf_size(self):
        with pytest.raises(ValidationError):
            KDTree(np.zeros((4, 2)), leaf_size=0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord), min_size=0, max_size=100),
        coord,
        coord,
        st.floats(0.1, 30.0),
    )
    def test_rect_property(self, pts, qx, qy, eps):
        arr = np.asarray(pts, dtype=np.float64).reshape(-1, 2)
        t = KDTree(arr, leaf_size=3)
        mbb = point_query_mbb(qx, qy, eps)
        assert set(t.query_rect(mbb).tolist()) == brute_rect(arr, mbb)


def synthetic_sample(nodes, cand, searches, reused, model: CostModel):
    c = WorkCounters(
        index_nodes_visited=nodes,
        candidates_examined=cand,
        neighbor_searches=searches,
        points_reused=reused,
    )
    wall = (
        model.node_visit_cost * nodes
        + model.candidate_cost * cand
        + model.search_overhead * searches
        + model.reuse_copy_cost * reused
    )
    return CalibrationSample(counters=c, wall_seconds=wall)


class TestCalibration:
    def test_recovers_known_coefficients(self):
        true = CostModel(
            node_visit_cost=1.0,
            candidate_cost=0.3,
            search_overhead=2.0,
            reuse_copy_cost=0.05,
        )
        rng = resolve_rng(0)
        samples = [
            synthetic_sample(
                int(rng.integers(1000, 100000)),
                int(rng.integers(1000, 100000)),
                int(rng.integers(100, 5000)),
                int(rng.integers(0, 20000)),
                true,
            )
            for _ in range(12)
        ]
        fit = fit_cost_model(samples)
        assert fit.candidate_cost == pytest.approx(0.3, rel=0.05)
        assert fit.search_overhead == pytest.approx(2.0, rel=0.05)
        assert fit.reuse_copy_cost == pytest.approx(0.05, rel=0.2)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValidationError):
            fit_cost_model([])

    def test_rank_deficient_rejected(self):
        c = WorkCounters(index_nodes_visited=10)
        s = CalibrationSample(counters=c, wall_seconds=1.0)
        with pytest.raises(ValidationError):
            fit_cost_model([s, s, s, s])

    def test_nonpositive_wall_rejected(self):
        samples = [
            synthetic_sample(10 * (i + 1), 5 * (i + 2), i + 1, i, CostModel())
            for i in range(4)
        ]
        bad = CalibrationSample(counters=samples[0].counters, wall_seconds=0.0)
        with pytest.raises(ValidationError):
            fit_cost_model(samples[:3] + [bad])

    def test_collect_samples_end_to_end(self, two_blobs):
        samples = collect_samples(two_blobs, 0.6, 4, r_values=(1, 4, 16, 64))
        assert len(samples) == 4
        fit = fit_cost_model(samples)
        assert fit.node_visit_cost == 1.0
        assert fit.candidate_cost >= 0.0
