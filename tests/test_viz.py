"""Tests for the ASCII visualization helpers (:mod:`repro.viz`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.variants import Variant
from repro.metrics.records import BatchRunRecord, VariantRunRecord
from repro.viz import heatmap, reachability_plot, scatter, timeline
from repro.util.rng import resolve_rng


class TestScatter:
    def test_dimensions(self):
        pts = resolve_rng(0).uniform(0, 10, (100, 2))
        out = scatter(pts, width=40, height=10)
        lines = out.splitlines()
        assert len(lines) == 10
        assert all(len(l) == 40 for l in lines)

    def test_empty(self):
        out = scatter(np.empty((0, 2)), width=10, height=3)
        assert out.splitlines() == [" " * 10] * 3

    def test_labels_use_letters_by_size(self):
        pts = np.vstack([np.full((10, 2), 0.0), np.full((3, 2), 9.0)])
        labels = np.array([0] * 10 + [1] * 3)
        out = scatter(pts, labels, width=20, height=5)
        assert "A" in out and "B" in out

    def test_noise_renders_as_comma(self):
        pts = np.array([[0.0, 0.0], [5.0, 5.0]])
        out = scatter(pts, np.array([-1, -1]), width=10, height=5)
        assert "," in out

    def test_single_point(self):
        out = scatter(np.array([[3.0, 3.0]]), width=8, height=4)
        assert out.count("*") == 1


class TestHeatmap:
    def test_dimensions_and_ramp(self):
        field = np.linspace(0, 1, 100).reshape(10, 10)
        out = heatmap(field, width=20, height=8)
        lines = out.splitlines()
        assert len(lines) == 8
        assert all(len(l) == 20 for l in lines)
        assert "@" in out and " " in out  # full ramp used

    def test_constant_field(self):
        out = heatmap(np.ones((5, 5)), width=10, height=4)
        assert len(set(out.replace("\n", ""))) == 1

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros(5))

    def test_north_is_up(self):
        field = np.zeros((10, 10))
        field[-1, :] = 1.0  # top row of the field (highest index)
        out = heatmap(field, width=10, height=10).splitlines()
        assert "@" in out[0] and "@" not in out[-1]


def _rec(v, t0, t1, tid, reused=None):
    return VariantRunRecord(
        variant=v, reused_from=reused, response_time=t1 - t0,
        start=t0, finish=t1, thread_id=tid,
    )


class TestTimeline:
    def test_lanes_and_markers(self):
        a, b = Variant(0.2, 8), Variant(0.3, 8)
        rec = BatchRunRecord(
            records=[_rec(a, 0, 5, 0), _rec(b, 0, 3, 1, reused=a)],
            n_threads=2,
            makespan=5.0,
        )
        out = timeline(rec, width=20)
        lines = out.splitlines()
        assert lines[0].startswith("T0")
        assert "#" in lines[0]  # scratch
        assert "=" in lines[1]  # reused
        assert "." in lines[1]  # idle tail

    def test_empty(self):
        assert "empty" in timeline(BatchRunRecord(records=[]))


class TestReachability:
    def test_dimensions(self):
        out = reachability_plot([np.inf, 1.0, 0.5, 0.4, 2.0], width=20, height=6)
        lines = out.splitlines()
        assert len(lines) == 7  # height + baseline
        assert all(len(l) == 20 for l in lines)

    def test_inf_renders_separator(self):
        out = reachability_plot([np.inf, 0.5, np.inf, 0.5], width=4, height=4)
        assert "|" in out

    def test_empty(self):
        assert "empty" in reachability_plot([])

    def test_valleys_lower_than_peaks(self):
        reach = [np.inf] + [0.1] * 10 + [5.0] + [0.1] * 10
        out = reachability_plot(reach, width=22, height=8).splitlines()
        top = out[0]
        assert "#" in top  # the peak reaches the top row
        assert top.count("#") <= 3  # valleys don't
