"""Tests for work counters, the cost model, and run records."""

from __future__ import annotations

import pytest

from repro.core.variants import Variant
from repro.exec.cost import DEFAULT_COST_MODEL, CostModel
from repro.metrics.counters import WorkCounters
from repro.metrics.records import BatchRunRecord, VariantRunRecord


class TestWorkCounters:
    def test_starts_zeroed(self):
        assert all(v == 0 for v in WorkCounters().as_dict().values())

    def test_merge_adds(self):
        a = WorkCounters(neighbor_searches=3, candidates_examined=10)
        b = WorkCounters(neighbor_searches=2, index_nodes_visited=7)
        a.merge(b)
        assert a.neighbor_searches == 5
        assert a.index_nodes_visited == 7
        assert a.candidates_examined == 10

    def test_add_operator_does_not_mutate(self):
        a = WorkCounters(neighbor_searches=1)
        b = WorkCounters(neighbor_searches=2)
        c = a + b
        assert c.neighbor_searches == 3
        assert a.neighbor_searches == 1

    def test_snapshot_independent(self):
        a = WorkCounters(points_reused=4)
        s = a.snapshot()
        a.points_reused = 9
        assert s.points_reused == 4

    def test_diff(self):
        base = WorkCounters(neighbor_searches=2)
        now = WorkCounters(neighbor_searches=7)
        assert now.diff(base).neighbor_searches == 5

    def test_reset(self):
        c = WorkCounters(neighbor_searches=5)
        c.reset()
        assert c.neighbor_searches == 0

    def test_total_memory_accesses(self):
        c = WorkCounters(index_nodes_visited=3, candidates_examined=4, points_reused=5)
        assert c.total_memory_accesses == 12


class TestCostModel:
    def test_duration_components(self):
        m = CostModel(
            node_visit_cost=1.0,
            candidate_cost=0.5,
            reuse_copy_cost=0.1,
            search_overhead=2.0,
            bandwidth_saturation=2.0,
        )
        c = WorkCounters(
            neighbor_searches=10,
            index_nodes_visited=100,
            candidates_examined=40,
            points_reused=50,
        )
        assert m.compute_work(c) == pytest.approx(40 * 0.5 + 10 * 2.0)
        assert m.memory_work(c) == pytest.approx(100 + 5.0)
        assert m.duration(c, 1) == pytest.approx(40.0 + 105.0)
        # at T = 8 memory work slows by 8/2 = 4x
        assert m.duration(c, 8) == pytest.approx(40.0 + 105.0 * 4.0)

    def test_contention_identity_at_one_thread(self):
        assert DEFAULT_COST_MODEL.contention(1) == 1.0

    def test_contention_never_below_one(self):
        assert DEFAULT_COST_MODEL.contention(2) >= 1.0

    def test_duration_monotone_in_concurrency(self):
        c = WorkCounters(index_nodes_visited=100)
        d = [DEFAULT_COST_MODEL.duration(c, t) for t in (1, 4, 16)]
        assert d == sorted(d)

    def test_memory_bound_scaling_ceiling(self):
        """Pure memory-bound work scales at most to bandwidth_saturation —
        the paper's r = 1 observation (~2.4x at 16 threads)."""
        m = DEFAULT_COST_MODEL
        c = WorkCounters(index_nodes_visited=10_000)
        t = 16
        speedup = t * m.duration(c, 1) / m.duration(c, t)
        assert speedup == pytest.approx(m.bandwidth_saturation)

    def test_compute_bound_scales_linearly(self):
        m = DEFAULT_COST_MODEL
        c = WorkCounters(candidates_examined=10_000)
        assert m.duration(c, 16) == pytest.approx(m.duration(c, 1))

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.candidate_cost = 0.0  # type: ignore[misc]


def rec(v, t0, t1, tid=0, reused=None, rt=None):
    return VariantRunRecord(
        variant=v,
        reused_from=reused,
        response_time=rt if rt is not None else t1 - t0,
        start=t0,
        finish=t1,
        thread_id=tid,
    )


class TestBatchRunRecord:
    def make(self):
        a, b, c = Variant(0.2, 8), Variant(0.3, 8), Variant(0.4, 8)
        records = [
            rec(a, 0.0, 4.0, 0),
            rec(b, 0.0, 2.0, 1),
            rec(c, 2.0, 5.0, 1, reused=a),
        ]
        return BatchRunRecord(records=records, n_threads=2, makespan=5.0)

    def test_totals(self):
        br = self.make()
        assert br.n_variants == 3
        assert br.total_response_time == pytest.approx(9.0)

    def test_from_scratch_count(self):
        assert self.make().n_from_scratch == 2

    def test_lower_bound_and_slowdown(self):
        br = self.make()
        assert br.lower_bound_makespan == pytest.approx(4.5)
        assert br.slowdown_vs_lower_bound == pytest.approx(5.0 / 4.5 - 1.0)

    def test_makespan_at_least_lower_bound(self):
        br = self.make()
        assert br.makespan >= br.lower_bound_makespan

    def test_thread_timelines_sorted(self):
        lanes = self.make().thread_timelines()
        assert list(lanes) == [0, 1]
        assert [r.start for r in lanes[1]] == [0.0, 2.0]

    def test_speedup_over(self):
        assert self.make().speedup_over(50.0) == pytest.approx(10.0)

    def test_average_reuse_fraction_empty(self):
        assert BatchRunRecord(records=[]).average_reuse_fraction == 0.0

    def test_from_scratch_property(self):
        assert rec(Variant(0.2, 4), 0, 1).from_scratch
        assert not rec(Variant(0.2, 4), 0, 1, reused=Variant(0.2, 8)).from_scratch
