"""Seeded fuzz layer for the scheduling module.

Hypothesis generates random variant sets and drives them through both
schedulers and the static dependency tree, asserting the structural
guarantees the executors rely on:

* every plan covers each variant exactly once;
* replaying a plan against a growing completed-registry only ever
  selects reuse sources satisfying the inclusion criteria (and never
  for ``force_scratch`` entries);
* the dependency tree is acyclic, covers the set, and every edge
  satisfies the inclusion criteria.

Failures print the offending plan — hypothesis shrinks the variant set
to a minimal counterexample, so the reproduction is readable.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.result import ClusteringResult
from repro.core.scheduling import (
    CompletedRegistry,
    SchedGreedy,
    SchedMinpts,
    dependency_tree,
    depth_first_schedule,
)
from repro.core.variants import Variant, VariantSet

eps_vals = st.sampled_from([0.3, 0.45, 0.6, 0.8, 1.0, 1.3])
minpts_vals = st.sampled_from([2, 3, 4, 6, 8, 12])
variant_sets = st.builds(
    VariantSet,
    st.lists(
        st.builds(Variant, eps=eps_vals, minpts=minpts_vals),
        min_size=1,
        max_size=12,
    ),
)
schedulers = st.sampled_from([SchedGreedy(), SchedMinpts()])


def _dummy_result(variant: Variant) -> ClusteringResult:
    """A minimal completed result to feed the registry (5 points, 1 cluster)."""
    return ClusteringResult(
        np.zeros(5, dtype=np.int64), np.ones(5, dtype=bool), variant=variant
    )


def _fmt_plan(plan) -> str:
    return " -> ".join(
        f"{p.variant}{'!' if p.force_scratch else ''}" for p in plan
    )


class TestPlanFuzz:
    @settings(max_examples=60, deadline=None)
    @given(vset=variant_sets, scheduler=schedulers)
    def test_plan_covers_each_variant_once(self, vset, scheduler):
        plan = scheduler.plan(vset)
        planned = [p.variant for p in plan]
        assert sorted(planned, key=lambda v: v.as_tuple()) == sorted(
            vset, key=lambda v: v.as_tuple()
        ), f"{scheduler.name} plan {_fmt_plan(plan)} does not cover {vset}"

    @settings(max_examples=60, deadline=None)
    @given(vset=variant_sets, scheduler=schedulers)
    def test_replay_only_selects_legal_sources(self, vset, scheduler):
        """Simulate serial execution: every selected source must satisfy
        the reuse precondition at the moment it is selected."""
        plan = scheduler.plan(vset)
        registry = CompletedRegistry()
        clock = 0.0
        for step, planned in enumerate(plan):
            source = scheduler.select_source(planned, vset, registry, before=clock)
            if planned.force_scratch:
                assert source is None, (
                    f"{scheduler.name} step {step}: force_scratch entry "
                    f"{planned.variant} was handed source {source[0]} "
                    f"(plan: {_fmt_plan(plan)})"
                )
            if source is not None:
                src_variant, src_result = source
                assert planned.variant.can_reuse(src_variant), (
                    f"{scheduler.name} step {step}: {planned.variant} may not "
                    f"reuse {src_variant} (plan: {_fmt_plan(plan)})"
                )
                assert src_result.variant == src_variant
                assert src_variant in registry
            clock += 1.0
            registry.add(planned.variant, _dummy_result(planned.variant), clock)

    @settings(max_examples=60, deadline=None)
    @given(vset=variant_sets)
    def test_greedy_source_is_distance_minimal(self, vset):
        """SCHEDGREEDY with everything completed must pick the same
        source as the static dependency tree (global knowledge)."""
        registry = CompletedRegistry()
        for v in vset:
            registry.add(v, _dummy_result(v))
        tree = dependency_tree(vset)
        scheduler = SchedGreedy()
        for planned in scheduler.plan(vset):
            source = scheduler.select_source(planned, vset, registry)
            parents = list(tree.predecessors(planned.variant))
            if source is None:
                assert not parents, (
                    f"{planned.variant} is a tree child of {parents} but the "
                    f"scheduler found no source"
                )
            else:
                assert parents == [source[0]], (
                    f"{planned.variant}: tree parent {parents} != greedy "
                    f"source {source[0]}"
                )


class TestDependencyTreeFuzz:
    @settings(max_examples=60, deadline=None)
    @given(vset=variant_sets)
    def test_tree_is_acyclic_forest_with_legal_edges(self, vset):
        tree = dependency_tree(vset)
        assert set(tree.nodes) == set(vset)
        assert nx.is_directed_acyclic_graph(tree), (
            f"dependency tree has a cycle: {list(nx.simple_cycles(tree))}"
        )
        for parent, child in tree.edges:
            assert child.can_reuse(parent), (
                f"edge {parent} -> {child} violates the inclusion criteria"
            )
        for v, data in tree.nodes(data=True):
            indeg = tree.in_degree(v)
            assert indeg <= 1, f"{v} has {indeg} parents"
            assert data.get("root") == (indeg == 0)

    @settings(max_examples=60, deadline=None)
    @given(vset=variant_sets)
    def test_depth_first_schedule_respects_dependencies(self, vset):
        tree = dependency_tree(vset)
        order = depth_first_schedule(tree)
        assert sorted(order, key=lambda v: v.as_tuple()) == sorted(
            vset, key=lambda v: v.as_tuple()
        )
        position = {v: i for i, v in enumerate(order)}
        for parent, child in tree.edges:
            assert position[parent] < position[child], (
                f"schedule visits {child} before its reuse source {parent}: "
                f"{' -> '.join(map(str, order))}"
            )
