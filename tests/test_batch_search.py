"""Batched epsilon-search engine: exact parity with the scalar path.

The whole batched stack — ``query_candidates_batch`` on every index,
``NeighborSearcher.search_batch``, the blocked frontier expansion in
DBSCAN/VariantDBSCAN, and the per-eps neighborhood cache — promises
*byte-identical* labels, core masks, and work-counter totals versus the
original one-point-at-a-time code.  These tests pin that promise down
with hypothesis-driven point sets spanning the empty/singleton/small/
clustered regimes, all four index types, and the paper's index
resolutions r in {1, 8, 70}.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dbscan import dbscan
from repro.core.neighbors import NeighborSearcher
from repro.core.neighcache import NeighborhoodCache
from repro.core.scheduling import SchedMinpts
from repro.core.variant_dbscan import variant_dbscan
from repro.core.variants import Variant, VariantSet
from repro.exec.serial import SerialExecutor
from repro.index.brute import BruteForceIndex
from repro.index.grid import UniformGridIndex
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree
from repro.metrics.counters import WorkCounters
from repro.util.rng import resolve_rng

R_VALUES = [1, 8, 70]

INDEX_BUILDERS = {
    "rtree-r1": lambda pts: RTree(pts, r=1),
    "rtree-r8": lambda pts: RTree(pts, r=8),
    "rtree-r70": lambda pts: RTree(pts, r=70),
    "grid": lambda pts: UniformGridIndex(pts, cell_width=0.9),
    "kdtree": lambda pts: KDTree(pts, leaf_size=8),
    "brute": lambda pts: BruteForceIndex(pts),
}


def _make_points(kind: str, seed: int) -> np.ndarray:
    """Deterministic point sets across the size/shape regimes."""
    g = resolve_rng(seed)
    if kind == "empty":
        return np.empty((0, 2), dtype=np.float64)
    if kind == "single":
        return np.array([[0.3, -1.2]])
    if kind == "small":
        return g.uniform(-2.0, 2.0, (17, 2))
    # clustered: two dense blobs + uniform background
    return np.vstack(
        [
            g.normal(0.0, 0.4, (120, 2)),
            g.normal(5.0, 0.6, (150, 2)),
            g.uniform(-3.0, 8.0, (40, 2)),
        ]
    )


point_kinds = st.sampled_from(["empty", "single", "small", "clustered"])
index_names = st.sampled_from(sorted(INDEX_BUILDERS))
eps_values = st.sampled_from([0.25, 0.6, 1.3])
seeds = st.integers(0, 2**16)


def _scalar_reference(searcher: NeighborSearcher, idxs: np.ndarray):
    """Per-point search results + counter totals, on fresh counters."""
    rows = [searcher.search(int(i)) for i in idxs]
    return rows


class TestSearchBatchParity:
    """search_batch == per-point search, rows and counters both."""

    @settings(max_examples=40, deadline=None)
    @given(point_kinds, index_names, eps_values, seeds)
    def test_rows_and_counters_match(self, kind, index_name, eps, seed):
        points = _make_points(kind, seed)
        index = INDEX_BUILDERS[index_name](points)
        n = points.shape[0]
        g = resolve_rng(seed + 1)
        # include duplicates and unsorted order on purpose
        idxs = g.integers(0, n, size=min(2 * n, 64)) if n else np.empty(0, int)
        idxs = np.asarray(idxs, dtype=np.int64)

        c_scalar = WorkCounters()
        scalar = _scalar_reference(
            NeighborSearcher(index, eps, c_scalar), idxs
        )
        c_batch = WorkCounters()
        indptr, flat = NeighborSearcher(index, eps, c_batch).search_batch(idxs)

        assert indptr.shape == (idxs.size + 1,)
        assert indptr[0] == 0
        for i, ref in enumerate(scalar):
            row = flat[indptr[i] : indptr[i + 1]]
            np.testing.assert_array_equal(row, ref)
        assert c_batch.as_dict() == c_scalar.as_dict()

    @pytest.mark.parametrize("r", R_VALUES)
    def test_rtree_resolutions_clustered(self, r):
        points = _make_points("clustered", 5)
        index = RTree(points, r=r)
        idxs = np.arange(points.shape[0], dtype=np.int64)
        c_scalar, c_batch = WorkCounters(), WorkCounters()
        scalar = _scalar_reference(NeighborSearcher(index, 0.6, c_scalar), idxs)
        indptr, flat = NeighborSearcher(index, 0.6, c_batch).search_batch(idxs)
        for i, ref in enumerate(scalar):
            np.testing.assert_array_equal(flat[indptr[i] : indptr[i + 1]], ref)
        assert c_batch.as_dict() == c_scalar.as_dict()

    def test_empty_block(self):
        points = _make_points("clustered", 1)
        searcher = NeighborSearcher(RTree(points, r=8), 0.5, WorkCounters())
        indptr, flat = searcher.search_batch(np.empty(0, dtype=np.int64))
        assert indptr.tolist() == [0]
        assert flat.size == 0

    @settings(max_examples=15, deadline=None)
    @given(index_names, eps_values, seeds)
    def test_cached_batch_matches_uncached(self, index_name, eps, seed):
        """Cache hits return the same rows; cache counters balance."""
        points = _make_points("clustered", seed)
        index = INDEX_BUILDERS[index_name](points)
        idxs = np.arange(0, points.shape[0], 3, dtype=np.int64)
        plain = NeighborSearcher(index, eps, WorkCounters())
        cache = NeighborhoodCache(capacity_bytes=32 << 20)
        c = WorkCounters()
        cached = NeighborSearcher(index, eps, c, cache=cache)
        for _ in range(2):  # second pass is all hits
            indptr, flat = cached.search_batch(idxs)
            for i, p in enumerate(idxs):
                np.testing.assert_array_equal(
                    flat[indptr[i] : indptr[i + 1]], plain.search(int(p))
                )
        assert c.neigh_cache_misses == idxs.size
        assert c.neigh_cache_hits == idxs.size
        assert c.neighbor_searches == 2 * idxs.size


class TestBatchedClusteringParity:
    """Whole-pipeline parity: batched/cached DBSCAN == scalar DBSCAN."""

    @settings(max_examples=20, deadline=None)
    @given(
        point_kinds,
        eps_values,
        st.sampled_from([2, 4, 8]),
        st.sampled_from([2, 7, 256]),
        seeds,
    )
    def test_dbscan_batched_equals_scalar(self, kind, eps, minpts, bs, seed):
        points = _make_points(kind, seed)
        index = RTree(points, r=8)
        c_s, c_b = WorkCounters(), WorkCounters()
        ref = dbscan(points, eps, minpts, index=index, counters=c_s, batch_size=1)
        got = dbscan(points, eps, minpts, index=index, counters=c_b, batch_size=bs)
        np.testing.assert_array_equal(got.labels, ref.labels)
        np.testing.assert_array_equal(got.core_mask, ref.core_mask)
        assert c_b.as_dict() == c_s.as_dict()

    @settings(max_examples=10, deadline=None)
    @given(seeds, st.sampled_from([4, 64]))
    def test_variant_dbscan_reuse_path_parity(self, seed, bs):
        points = _make_points("clustered", seed)
        t_high = RTree(points, r=1)
        t_low = RTree(points, r=70)
        prev = variant_dbscan(points, Variant(0.4, 8), None, t_low=t_low, batch_size=1)
        c_s, c_b = WorkCounters(), WorkCounters()
        ref = variant_dbscan(
            points, Variant(0.7, 4), prev, t_high=t_high, t_low=t_low,
            counters=c_s, batch_size=1,
        )
        got = variant_dbscan(
            points, Variant(0.7, 4), prev, t_high=t_high, t_low=t_low,
            counters=c_b, batch_size=bs,
        )
        np.testing.assert_array_equal(got.labels, ref.labels)
        np.testing.assert_array_equal(got.core_mask, ref.core_mask)
        assert c_b.as_dict() == c_s.as_dict()

    def test_cached_executor_identical_labels(self, two_blobs):
        """Cached vs uncached VariantDBSCAN batches agree label-for-label."""
        vset = VariantSet.from_product([0.5, 0.6, 0.8], [4, 6])
        plain = SerialExecutor(scheduler=SchedMinpts()).run(two_blobs, vset)
        cached = SerialExecutor(
            scheduler=SchedMinpts(), cache_bytes=64 << 20
        ).run(two_blobs, vset)
        for v in vset:
            np.testing.assert_array_equal(cached[v].labels, plain[v].labels)
            np.testing.assert_array_equal(cached[v].core_mask, plain[v].core_mask)
        hits = sum(r.counters.neigh_cache_hits for r in cached.record.records)
        assert hits > 0  # SCHEDMINPTS groups eps values, so sharing must occur


class TestNeighborhoodCache:
    def test_lru_eviction_respects_capacity(self):
        points = _make_points("clustered", 3)
        index = RTree(points, r=8)
        row = np.arange(64, dtype=np.int64)
        cap = 3 * row.nbytes
        cache = NeighborhoodCache(capacity_bytes=cap)
        for k, eps in enumerate([0.1, 0.2, 0.3, 0.4, 0.5]):
            cache.put(eps, index, k, row.copy())
            assert cache.nbytes <= cap
        stats = cache.stats()
        assert stats.evictions >= 2
        # oldest eps entries evicted, newest retained
        assert cache.get(0.5, index, 4) is not None
        assert cache.get(0.1, index, 0) is None

    def test_rows_are_readonly_and_copied(self):
        points = _make_points("small", 9)
        index = RTree(points, r=1)
        cache = NeighborhoodCache(capacity_bytes=1 << 20)
        big = np.arange(100, dtype=np.int64)
        cache.put(0.5, index, 0, big[:10])  # a view — must be copied
        got = cache.get(0.5, index, 0)
        assert got.base is None or got.base is not big
        assert not got.flags.writeable
        with pytest.raises(ValueError):
            got[0] = -1

    def test_distinct_eps_and_index_are_distinct_keys(self):
        points = _make_points("small", 4)
        a, b = RTree(points, r=1), RTree(points, r=8)
        cache = NeighborhoodCache(capacity_bytes=1 << 20)
        cache.put(0.5, a, 0, np.array([1, 2], dtype=np.int64))
        assert cache.get(0.5, b, 0) is None
        assert cache.get(0.6, a, 0) is None
        assert cache.get(0.5, a, 0) is not None
