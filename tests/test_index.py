"""Tests for the spatial indexes: R-tree, grid, brute force, bin sort.

The central property: for any point set and any query rectangle, every
index returns a candidate superset of the true contents, and
``query_rect`` returns exactly the true contents.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.index import (
    BruteForceIndex,
    RTree,
    UniformGridIndex,
    binsort_order,
)
from repro.index._ranges import ranges_to_indices
from repro.index.mbb import mbb_contains_points, point_query_mbb
from repro.metrics.counters import WorkCounters
from repro.util.errors import ValidationError
from repro.util.rng import resolve_rng

coord = st.floats(-500.0, 500.0, allow_nan=False, allow_infinity=False)
point_lists = st.lists(st.tuples(coord, coord), min_size=0, max_size=120)


def brute_rect(points: np.ndarray, mbb: np.ndarray) -> set[int]:
    if points.shape[0] == 0:
        return set()
    return set(np.flatnonzero(mbb_contains_points(mbb, points)).tolist())


class TestRangesToIndices:
    def test_basic(self):
        out = ranges_to_indices(np.array([0, 10]), np.array([3, 2]))
        assert out.tolist() == [0, 1, 2, 10, 11]

    def test_zero_length_ranges_skipped(self):
        out = ranges_to_indices(np.array([5, 7, 9]), np.array([0, 2, 0]))
        assert out.tolist() == [7, 8]

    def test_empty(self):
        assert ranges_to_indices(np.array([], dtype=int), np.array([], dtype=int)).size == 0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            ranges_to_indices(np.array([0]), np.array([-1]))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            ranges_to_indices(np.array([0, 1]), np.array([1]))

    @given(
        st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 20)), min_size=0, max_size=30
        )
    )
    def test_matches_naive_expansion(self, ranges):
        starts = np.array([r[0] for r in ranges], dtype=np.int64)
        counts = np.array([r[1] for r in ranges], dtype=np.int64)
        expected = [i for s, c in ranges for i in range(s, s + c)]
        assert ranges_to_indices(starts, counts).tolist() == expected


class TestBinsort:
    def test_permutation(self):
        pts = resolve_rng(0).uniform(0, 50, (200, 2))
        order = binsort_order(pts)
        assert sorted(order.tolist()) == list(range(200))

    def test_orders_by_bins_then_coords(self):
        pts = np.array([[2.5, 0.1], [0.3, 5.0], [0.2, 0.9], [0.2, 0.1]])
        order = binsort_order(pts)
        assert order.tolist() == [3, 2, 1, 0]

    def test_empty(self):
        assert binsort_order(np.empty((0, 2))).size == 0

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            binsort_order(np.zeros((1, 2)), bin_width=0.0)

    def test_locality_improves_over_input_order(self):
        """Consecutive bin-sorted points are closer on average than raw order."""
        pts = resolve_rng(5).uniform(0, 100, (500, 2))
        srt = pts[binsort_order(pts)]
        raw_gap = np.linalg.norm(np.diff(pts, axis=0), axis=1).mean()
        srt_gap = np.linalg.norm(np.diff(srt, axis=0), axis=1).mean()
        assert srt_gap < raw_gap


class TestRTreeConstruction:
    def test_r1_has_n_leaves(self):
        pts = resolve_rng(1).uniform(0, 10, (37, 2))
        t = RTree(pts, r=1)
        assert t.n_leaves == 37

    def test_leaf_count_ceil(self):
        pts = resolve_rng(1).uniform(0, 10, (100, 2))
        assert RTree(pts, r=7).n_leaves == 15  # ceil(100/7)

    def test_larger_r_gives_shallower_tree(self):
        pts = resolve_rng(2).uniform(0, 100, (2000, 2))
        assert RTree(pts, r=70).height < RTree(pts, r=1).height

    def test_level_sizes_monotone(self):
        pts = resolve_rng(3).uniform(0, 100, (1500, 2))
        t = RTree(pts, r=4, fanout=8)
        sizes = t.level_sizes
        assert sizes == sorted(sizes)
        assert sizes[0] <= t.fanout

    def test_empty_database(self):
        t = RTree(np.empty((0, 2)), r=5)
        q = t.query_candidates(np.array([0.0, 0.0, 1.0, 1.0]))
        assert q.size == 0

    def test_invalid_r_rejected(self):
        with pytest.raises(ValidationError):
            RTree(np.zeros((4, 2)), r=0)

    def test_invalid_fanout_rejected(self):
        with pytest.raises(ValidationError):
            RTree(np.zeros((4, 2)), r=1, fanout=1)


class TestRTreeQueries:
    @pytest.mark.parametrize("r", [1, 3, 16, 70])
    def test_candidates_are_superset_of_rect_contents(self, r):
        pts = resolve_rng(4).uniform(0, 60, (400, 2))
        t = RTree(pts, r=r)
        for qx, qy in [(5, 5), (30, 30), (59, 1)]:
            mbb = point_query_mbb(qx, qy, 3.0)
            cand = set(t.query_candidates(mbb).tolist())
            assert brute_rect(pts, mbb) <= cand

    @pytest.mark.parametrize("r", [1, 3, 16, 70])
    def test_query_rect_exact(self, r):
        pts = resolve_rng(5).uniform(0, 60, (400, 2))
        t = RTree(pts, r=r)
        for qx, qy in [(5, 5), (30, 30), (59, 1)]:
            mbb = point_query_mbb(qx, qy, 4.0)
            got = set(t.query_rect(mbb).tolist())
            assert got == brute_rect(pts, mbb)

    def test_r1_candidates_are_exact(self):
        """With one point per MBB, box overlap == box containment."""
        pts = resolve_rng(6).uniform(0, 20, (150, 2))
        t = RTree(pts, r=1)
        mbb = point_query_mbb(10, 10, 2.5)
        assert set(t.query_candidates(mbb).tolist()) == brute_rect(pts, mbb)

    def test_no_duplicate_candidates(self):
        pts = resolve_rng(7).uniform(0, 10, (300, 2))
        t = RTree(pts, r=9)
        cand = t.query_candidates(np.array([0.0, 0.0, 10.0, 10.0]))
        assert len(set(cand.tolist())) == cand.size == 300

    def test_counters_record_node_visits(self):
        pts = resolve_rng(8).uniform(0, 50, (500, 2))
        t = RTree(pts, r=5)
        c = WorkCounters()
        t.query_candidates(point_query_mbb(25, 25, 1.0), c)
        assert c.index_nodes_visited > 0

    def test_larger_r_visits_fewer_nodes(self):
        pts = resolve_rng(9).uniform(0, 100, (3000, 2))
        visits = {}
        for r in (1, 70):
            c = WorkCounters()
            RTree(pts, r=r).query_candidates(point_query_mbb(50, 50, 2.0), c)
            visits[r] = c.index_nodes_visited
        assert visits[70] < visits[1]

    def test_larger_r_returns_more_candidates(self):
        pts = resolve_rng(10).uniform(0, 100, (3000, 2))
        mbb = point_query_mbb(50, 50, 2.0)
        n1 = RTree(pts, r=1).query_candidates(mbb).size
        n70 = RTree(pts, r=70).query_candidates(mbb).size
        assert n70 >= n1

    def test_far_away_query_returns_empty(self):
        pts = resolve_rng(11).uniform(0, 10, (100, 2))
        t = RTree(pts, r=4)
        assert t.query_candidates(point_query_mbb(1e5, 1e5, 1.0)).size == 0

    def test_duplicate_points_all_returned(self):
        pts = np.array([[1.0, 1.0]] * 10 + [[5.0, 5.0]])
        t = RTree(pts, r=3)
        got = t.query_rect(point_query_mbb(1.0, 1.0, 0.5))
        assert sorted(got.tolist()) == list(range(10))

    def test_presort_false_still_correct(self):
        pts = resolve_rng(12).uniform(0, 30, (250, 2))
        t = RTree(pts, r=8, presort=False)
        mbb = point_query_mbb(15, 15, 3.0)
        assert set(t.query_rect(mbb).tolist()) == brute_rect(pts, mbb)

    @settings(max_examples=40, deadline=None)
    @given(point_lists, coord, coord, st.floats(0.1, 50.0))
    def test_rect_matches_brute_force(self, pts, qx, qy, eps):
        arr = np.asarray(pts, dtype=np.float64).reshape(-1, 2)
        t = RTree(arr, r=5)
        mbb = point_query_mbb(qx, qy, eps)
        assert set(t.query_rect(mbb).tolist()) == brute_rect(arr, mbb)


class TestBruteForceIndex:
    def test_all_points_are_candidates(self):
        pts = resolve_rng(13).uniform(0, 10, (50, 2))
        idx = BruteForceIndex(pts)
        cand = idx.query_candidates(point_query_mbb(5, 5, 0.1))
        assert cand.size == 50

    def test_rect_filters_exactly(self):
        pts = resolve_rng(14).uniform(0, 10, (200, 2))
        idx = BruteForceIndex(pts)
        mbb = point_query_mbb(5, 5, 2.0)
        assert set(idx.query_rect(mbb).tolist()) == brute_rect(pts, mbb)

    def test_counts_one_node_visit_per_query(self):
        idx = BruteForceIndex(np.zeros((10, 2)))
        c = WorkCounters()
        idx.query_candidates(np.array([0, 0, 1, 1.0]), c)
        assert c.index_nodes_visited == 1


class TestUniformGrid:
    def test_rect_matches_brute_force_fixed(self):
        pts = resolve_rng(15).uniform(0, 40, (500, 2))
        g = UniformGridIndex(pts, cell_width=2.0)
        for qx, qy, eps in [(5, 5, 1.0), (20, 20, 3.7), (39, 39, 0.5)]:
            mbb = point_query_mbb(qx, qy, eps)
            assert set(g.query_rect(mbb).tolist()) == brute_rect(pts, mbb)

    def test_negative_coordinates(self):
        pts = np.array([[-5.2, -3.1], [-5.0, -3.0], [4.0, 4.0]])
        g = UniformGridIndex(pts, cell_width=1.0)
        mbb = point_query_mbb(-5.1, -3.05, 0.5)
        assert set(g.query_rect(mbb).tolist()) == brute_rect(pts, mbb)

    def test_n_cells(self):
        pts = np.array([[0.5, 0.5], [0.6, 0.6], [3.5, 3.5]])
        assert UniformGridIndex(pts, cell_width=1.0).n_cells == 2

    def test_empty(self):
        g = UniformGridIndex(np.empty((0, 2)), cell_width=1.0)
        assert g.query_candidates(np.array([0, 0, 1, 1.0])).size == 0

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            UniformGridIndex(np.zeros((2, 2)), cell_width=-1.0)

    def test_counts_cell_probes(self):
        pts = resolve_rng(16).uniform(0, 10, (100, 2))
        g = UniformGridIndex(pts, cell_width=1.0)
        c = WorkCounters()
        g.query_candidates(point_query_mbb(5.0, 5.0, 1.0), c)
        assert c.index_nodes_visited == 9  # 3x3 block of probes

    @settings(max_examples=40, deadline=None)
    @given(point_lists, coord, coord, st.floats(0.1, 20.0))
    def test_rect_matches_brute_force_property(self, pts, qx, qy, eps):
        arr = np.asarray(pts, dtype=np.float64).reshape(-1, 2)
        g = UniformGridIndex(arr, cell_width=3.0)
        mbb = point_query_mbb(qx, qy, eps)
        assert set(g.query_rect(mbb).tolist()) == brute_rect(arr, mbb)
