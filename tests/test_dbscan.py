"""Tests for DBSCAN (Algorithm 1) and the epsilon-neighborhood search.

Correctness is checked two ways: against known cluster structure, and
against the defining DBSCAN invariants —

* a core point has ``|N_eps| >= minpts`` (counting itself);
* a noise point has ``|N_eps| < minpts`` and no core point within eps;
* every cluster member is a core point or within eps of a same-cluster
  core point;
* two core points within eps of each other share a cluster;
* results are independent of the index used (r = 1, large r, grid,
  brute force) up to label permutation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dbscan import dbscan
from repro.core.neighbors import NeighborSearcher, neighbor_search
from repro.core.result import NOISE
from repro.index import BruteForceIndex, RTree, UniformGridIndex
from repro.metrics.counters import WorkCounters
from repro.metrics.quality import quality_score
from repro.util.errors import ValidationError

coord = st.floats(0.0, 50.0, allow_nan=False)


def brute_neighbors(points, i, eps):
    d = np.linalg.norm(points - points[i], axis=1)
    return set(np.flatnonzero(d <= eps).tolist())


def check_invariants(points, res, eps, minpts):
    """Assert the DBSCAN structural invariants listed in the docstring."""
    n = points.shape[0]
    for i in range(n):
        nb = brute_neighbors(points, i, eps)
        if res.core_mask[i]:
            assert len(nb) >= minpts, f"core point {i} lacks support"
        else:
            assert len(nb) < minpts or res.labels[i] != NOISE
        if res.labels[i] == NOISE:
            assert not any(res.core_mask[j] for j in nb), f"noise {i} near a core"
        if res.labels[i] >= 0 and not res.core_mask[i]:
            # border: within eps of a core point of the same cluster
            assert any(
                res.core_mask[j] and res.labels[j] == res.labels[i] for j in nb
            ), f"border point {i} detached"
    # core-core merging
    for i in range(n):
        if not res.core_mask[i]:
            continue
        for j in brute_neighbors(points, i, eps):
            if res.core_mask[j]:
                assert res.labels[i] == res.labels[j]


class TestNeighborSearch:
    def test_includes_self(self, two_blobs):
        idx = RTree(two_blobs, r=4)
        nb = neighbor_search(idx, 0, 0.5)
        assert 0 in nb.tolist()

    @pytest.mark.parametrize("r", [1, 8, 70])
    def test_matches_brute_force(self, two_blobs, r):
        idx = RTree(two_blobs, r=r)
        s = NeighborSearcher(idx, 0.7)
        for i in (0, 17, 200, len(two_blobs) - 1):
            assert set(s.search(i).tolist()) == brute_neighbors(two_blobs, i, 0.7)

    def test_search_xy_arbitrary_location(self, two_blobs):
        s = NeighborSearcher(RTree(two_blobs, r=8), 1.0)
        got = set(s.search_xy(8.0, 8.0).tolist())
        d = np.linalg.norm(two_blobs - [8.0, 8.0], axis=1)
        assert got == set(np.flatnonzero(d <= 1.0).tolist())

    def test_counters_accumulate(self, two_blobs):
        c = WorkCounters()
        s = NeighborSearcher(RTree(two_blobs, r=8), 0.5, c)
        s.search(0)
        s.search(1)
        assert c.neighbor_searches == 2
        assert c.candidates_examined >= c.neighbors_found > 0
        assert c.distance_computations == c.candidates_examined

    def test_boundary_distance_inclusive(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.5, 0.0]])
        s = NeighborSearcher(RTree(pts, r=1), 1.0)
        assert set(s.search(0).tolist()) == {0, 1}


class TestDbscanKnownStructure:
    def test_two_blobs_two_clusters(self, two_blobs):
        res = dbscan(two_blobs, 0.6, 4)
        assert res.n_clusters == 2
        # the two blob cores are split correctly
        assert res.labels[0] != res.labels[151] or res.labels[0] == NOISE

    def test_blob_members_share_labels(self, two_blobs):
        res = dbscan(two_blobs, 0.6, 4)
        a_labels = set(res.labels[:150].tolist()) - {NOISE}
        b_labels = set(res.labels[150:300].tolist()) - {NOISE}
        assert len(a_labels) == 1 and len(b_labels) == 1
        assert a_labels != b_labels

    def test_uniform_cloud_mostly_noise_at_small_eps(self, uniform_cloud):
        res = dbscan(uniform_cloud, 0.3, 4)
        assert res.n_noise > 0.8 * len(uniform_cloud)

    def test_single_big_cluster_at_huge_eps(self, two_blobs):
        res = dbscan(two_blobs, 50.0, 4)
        assert res.n_clusters == 1
        assert res.n_noise == 0

    def test_minpts_one_clusters_everything(self, uniform_cloud):
        res = dbscan(uniform_cloud, 0.5, 1)
        assert res.n_noise == 0

    def test_minpts_larger_than_n_all_noise(self, two_blobs):
        res = dbscan(two_blobs, 0.5, len(two_blobs) + 1)
        assert res.n_clusters == 0

    def test_empty_database(self):
        res = dbscan(np.empty((0, 2)), 0.5, 4)
        assert res.n_points == 0
        assert res.n_clusters == 0

    def test_single_point(self):
        res = dbscan(np.array([[1.0, 1.0]]), 0.5, 2)
        assert res.labels.tolist() == [NOISE]

    def test_single_point_minpts_one(self):
        res = dbscan(np.array([[1.0, 1.0]]), 0.5, 1)
        assert res.labels.tolist() == [0]

    def test_duplicate_points_cluster_together(self):
        pts = np.array([[2.0, 2.0]] * 6)
        res = dbscan(pts, 0.1, 4)
        assert res.n_clusters == 1
        assert set(res.labels.tolist()) == {0}

    def test_recovers_planted_clusters(self, small_synthetic):
        points, truth = small_synthetic
        res = dbscan(points, 0.8, 4)
        # every planted cluster should map to one dominant found label
        for c in range(truth.max() + 1):
            members = res.labels[truth == c]
            members = members[members >= 0]
            if members.size == 0:
                continue
            dominant = np.bincount(members).max()
            assert dominant >= 0.9 * members.size

    def test_invalid_inputs_rejected(self, two_blobs):
        with pytest.raises(ValidationError):
            dbscan(two_blobs, -1.0, 4)
        with pytest.raises(ValidationError):
            dbscan(two_blobs, 0.5, 0)


class TestDbscanInvariants:
    @pytest.mark.parametrize("eps,minpts", [(0.5, 4), (1.0, 8), (2.0, 3)])
    def test_invariants_on_blobs(self, two_blobs, eps, minpts):
        res = dbscan(two_blobs, eps, minpts)
        check_invariants(two_blobs, res, eps, minpts)

    def test_invariants_on_uniform(self, uniform_cloud):
        res = dbscan(uniform_cloud, 1.5, 5)
        check_invariants(uniform_cloud, res, 1.5, 5)

    def test_labels_dense(self, two_blobs):
        res = dbscan(two_blobs, 0.9, 3)
        found = np.unique(res.labels[res.labels >= 0])
        assert found.tolist() == list(range(res.n_clusters))

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord), min_size=0, max_size=60),
        st.floats(0.2, 8.0),
        st.integers(1, 8),
    )
    def test_invariants_property(self, pts, eps, minpts):
        arr = np.asarray(pts, dtype=np.float64).reshape(-1, 2)
        res = dbscan(arr, eps, minpts)
        check_invariants(arr, res, eps, minpts)


class TestIndexIndependence:
    @pytest.mark.parametrize(
        "make_index",
        [
            lambda p: RTree(p, r=1),
            lambda p: RTree(p, r=16),
            lambda p: RTree(p, r=70),
            lambda p: BruteForceIndex(p),
            lambda p: UniformGridIndex(p, cell_width=1.0),
        ],
        ids=["r1", "r16", "r70", "brute", "grid"],
    )
    def test_same_clustering_for_every_index(self, two_blobs, make_index):
        ref = dbscan(two_blobs, 0.7, 4, index=RTree(two_blobs, r=1))
        got = dbscan(two_blobs, 0.7, 4, index=make_index(two_blobs))
        assert quality_score(ref, got) == pytest.approx(1.0)
        assert np.array_equal(ref.core_mask, got.core_mask)

    def test_counters_flow_through(self, two_blobs):
        c = WorkCounters()
        dbscan(two_blobs, 0.5, 4, counters=c)
        assert c.neighbor_searches == len(two_blobs)
        assert c.candidates_examined > 0
