"""Cell-graph DBSCAN kernel: exactness, metamorphic, and wiring tests.

The kernel's contract is stronger than the usual "same clustering":
its output is **byte-identical** to the BFS path at the same
parameters (see :mod:`repro.core.cellgraph` for the proof sketch).
The suite asserts that bar directly, then layers on:

* the differential oracle (paper Section V-D): per-point Jaccard
  quality >= 0.998 against plain DBSCAN (it is 1.0 by exactness);
* the inclusion-criteria metamorphic properties of Section IV-B on
  cellgraph output alone;
* canonical-label equality against the R-tree BFS reference across
  every executor x scheduler x reuse-policy combination of the batch
  engine with ``kernel="cellgraph"``;
* unit tests for the index's cell-graph state and the vectorized
  union-find.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cellgraph import cellgraph_dbscan, flatten_parents, union_edges
from repro.core.dbscan import dbscan
from repro.core.result import relabel_dense
from repro.core.reuse import POLICIES
from repro.core.scheduling import SCHEDULERS
from repro.core.variants import VariantSet
from repro.engine import Session
from repro.index.cellgraph import (
    NEIGHBOR_OFFSETS,
    POSITIVE_OFFSETS,
    CellGraphIndex,
)
from repro.index.rtree import RTree
from repro.metrics.counters import WorkCounters
from repro.metrics.quality import quality_score
from repro.util.rng import resolve_rng

QUALITY_BAR = 0.998

EPS_GRID = [0.3, 0.45, 0.6, 0.75, 1.5]
MINPTS_GRID = [1, 2, 4, 8, 20]


def canonical(labels: np.ndarray) -> np.ndarray:
    return relabel_dense(np.asarray(labels))[0]


def bfs_oracle(points, eps, minpts):
    """Plain BFS DBSCAN over the exact r=1 R-tree — the byte-level oracle."""
    return dbscan(points, eps, minpts, index=RTree(points, r=1))


# ---------------------------------------------------------------------------
# index state
# ---------------------------------------------------------------------------


class TestCellGraphIndex:
    def test_cell_width_is_eps_over_sqrt2(self, two_blobs):
        idx = CellGraphIndex(two_blobs, 0.6)
        assert idx.eps == 0.6
        assert idx.cell_width == pytest.approx(0.6 / np.sqrt(2.0), rel=1e-9)
        # the safety shrink keeps the all-core guarantee: never wider
        assert idx.cell_width <= 0.6 / np.sqrt(2.0)

    def test_invalid_eps_rejected(self, two_blobs):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                CellGraphIndex(two_blobs, bad)

    def test_cell_assignment_is_consistent(self, two_blobs):
        idx = CellGraphIndex(two_blobs, 0.6)
        n = two_blobs.shape[0]
        # every point maps to a slot; slot populations match cell_counts
        assert idx.cell_of_point.shape == (n,)
        counts = np.bincount(idx.cell_of_point, minlength=idx.n_cells)
        np.testing.assert_array_equal(counts, idx.cell_counts)
        # point_order visits each point once, grouped by ascending slot
        order = idx.point_order
        assert np.array_equal(np.sort(order), np.arange(n))
        slots_in_order = idx.cell_of_point[order]
        assert np.all(np.diff(slots_in_order) >= 0)
        # the key actually matches the coordinates
        keys = idx.cell_keys[idx.cell_of_point]
        np.testing.assert_array_equal(
            keys, np.floor(two_blobs / idx.cell_width).astype(np.int64)
        )

    def test_points_in_cells_roundtrip(self, two_blobs):
        idx = CellGraphIndex(two_blobs, 0.6)
        slots = np.arange(idx.n_cells, dtype=np.int64)
        pts = idx.points_in_cells(slots)
        assert np.array_equal(np.sort(pts), np.arange(two_blobs.shape[0]))
        assert idx.points_in_cells(np.empty(0, dtype=np.int64)).size == 0

    def test_neighbor_slots_match_key_lookup(self, two_blobs):
        idx = CellGraphIndex(two_blobs, 0.6)
        slots = np.arange(idx.n_cells, dtype=np.int64)
        key_to_slot = {
            (int(kx), int(ky)): s
            for s, (kx, ky) in enumerate(idx.cell_keys)
        }
        for off in NEIGHBOR_OFFSETS:
            nb = idx.neighbor_slots(slots, off)
            for s in range(idx.n_cells):
                want = key_to_slot.get(
                    (
                        int(idx.cell_keys[s, 0]) + int(off[0]),
                        int(idx.cell_keys[s, 1]) + int(off[1]),
                    ),
                    -1,
                )
                assert nb[s] == want

    def test_offset_tables(self):
        # 5x5 block minus the center; the positive half enumerates each
        # unordered pair exactly once.
        assert NEIGHBOR_OFFSETS.shape == (24, 2)
        assert POSITIVE_OFFSETS.shape == (12, 2)
        as_set = {tuple(o) for o in NEIGHBOR_OFFSETS}
        assert (0, 0) not in as_set
        assert {(-dx, -dy) for dx, dy in as_set} == as_set
        pos = {tuple(o) for o in POSITIVE_OFFSETS}
        assert pos | {(-dx, -dy) for dx, dy in pos} == as_set


# ---------------------------------------------------------------------------
# vectorized union-find
# ---------------------------------------------------------------------------


class TestVectorizedUnionFind:
    def test_flatten_compresses_chains(self):
        parent = np.array([0, 0, 1, 2, 3], dtype=np.int64)
        flatten_parents(parent)
        np.testing.assert_array_equal(parent, np.zeros(5, dtype=np.int64))

    def test_union_transitive_chain(self):
        parent = np.arange(6, dtype=np.int64)
        union_edges(
            parent,
            np.array([5, 4, 3, 2, 1], dtype=np.int64),
            np.array([4, 3, 2, 1, 0], dtype=np.int64),
        )
        np.testing.assert_array_equal(parent, np.zeros(6, dtype=np.int64))

    def test_union_roots_are_component_minima(self):
        parent = np.arange(8, dtype=np.int64)
        union_edges(
            parent,
            np.array([7, 3, 5], dtype=np.int64),
            np.array([3, 7, 1], dtype=np.int64),
        )
        assert parent[7] == parent[3] == 3
        assert parent[5] == parent[1] == 1
        assert parent[0] == 0 and parent[2] == 2

    def test_union_random_vs_scalar_reference(self):
        g = resolve_rng(99)
        n = 200
        a = g.integers(0, n, 400).astype(np.int64)
        b = g.integers(0, n, 400).astype(np.int64)
        parent = np.arange(n, dtype=np.int64)
        union_edges(parent, a, b)
        flatten_parents(parent)

        ref = list(range(n))

        def find(i):
            while ref[i] != i:
                ref[i] = ref[ref[i]]
                i = ref[i]
            return i

        for i, j in zip(a.tolist(), b.tolist()):
            ri, rj = find(i), find(j)
            if ri != rj:
                hi, lo = max(ri, rj), min(ri, rj)
                ref[hi] = lo
        ref_root = np.array([find(i) for i in range(n)])
        # identical partition AND identical (minimum) representatives
        np.testing.assert_array_equal(parent, ref_root)


# ---------------------------------------------------------------------------
# byte-identical exactness vs the BFS path
# ---------------------------------------------------------------------------


class TestExactEquality:
    @pytest.mark.parametrize("eps", EPS_GRID)
    @pytest.mark.parametrize("minpts", MINPTS_GRID)
    def test_blobs_grid(self, two_blobs, eps, minpts):
        ref = bfs_oracle(two_blobs, eps, minpts)
        got = cellgraph_dbscan(two_blobs, eps, minpts)
        np.testing.assert_array_equal(got.labels, ref.labels)
        np.testing.assert_array_equal(got.core_mask, ref.core_mask)

    @pytest.mark.parametrize("eps,minpts", [(0.5, 4), (1.0, 2), (2.0, 10)])
    def test_uniform_cloud(self, uniform_cloud, eps, minpts):
        ref = bfs_oracle(uniform_cloud, eps, minpts)
        got = cellgraph_dbscan(uniform_cloud, eps, minpts)
        np.testing.assert_array_equal(got.labels, ref.labels)
        np.testing.assert_array_equal(got.core_mask, ref.core_mask)

    def test_synthetic_with_structure(self, small_synthetic):
        points, _truth = small_synthetic
        for eps, minpts in [(0.8, 4), (1.2, 8)]:
            ref = bfs_oracle(points, eps, minpts)
            got = cellgraph_dbscan(points, eps, minpts)
            np.testing.assert_array_equal(got.labels, ref.labels)
            np.testing.assert_array_equal(got.core_mask, ref.core_mask)

    def test_degenerate_databases(self):
        empty = np.empty((0, 2), dtype=np.float64)
        res = cellgraph_dbscan(empty, 0.5, 4)
        assert res.labels.size == 0 and res.n_clusters == 0

        single = np.array([[1.0, 2.0]])
        for minpts in (1, 2):
            ref = bfs_oracle(single, 0.5, minpts)
            got = cellgraph_dbscan(single, 0.5, minpts)
            np.testing.assert_array_equal(got.labels, ref.labels)
            np.testing.assert_array_equal(got.core_mask, ref.core_mask)

        # coincident points: one dense cell, everything core at minpts<=5
        dupes = np.zeros((5, 2))
        got = cellgraph_dbscan(dupes, 0.5, 5)
        assert got.core_mask.all() and (got.labels == 0).all()

    def test_cell_boundary_pairs(self):
        # Points at exactly eps separation exercise the closed predicate
        # across the (+-2, +-2) corner offsets.
        eps = 1.0
        pts = np.array(
            [[0.0, 0.0], [eps, 0.0], [0.0, eps], [eps / np.sqrt(2)] * 2]
        )
        for minpts in (1, 2, 3, 4):
            ref = bfs_oracle(pts, eps, minpts)
            got = cellgraph_dbscan(pts, eps, minpts)
            np.testing.assert_array_equal(got.labels, ref.labels)
            np.testing.assert_array_equal(got.core_mask, ref.core_mask)

    def test_prebuilt_index_and_eps_mismatch(self, two_blobs):
        idx = CellGraphIndex(two_blobs, 0.6)
        got = cellgraph_dbscan(two_blobs, 0.6, 4, index=idx)
        ref = bfs_oracle(two_blobs, 0.6, 4)
        np.testing.assert_array_equal(got.labels, ref.labels)
        with pytest.raises(ValueError, match="built for eps"):
            cellgraph_dbscan(two_blobs, 0.7, 4, index=idx)

    def test_dbscan_dispatches_on_cellgraph_index(self, two_blobs):
        # dbscan() takes the cell-graph path when handed a matching index
        idx = CellGraphIndex(two_blobs, 0.6)
        c = WorkCounters()
        got = dbscan(two_blobs, 0.6, 4, index=idx, counters=c)
        ref = bfs_oracle(two_blobs, 0.6, 4)
        np.testing.assert_array_equal(got.labels, ref.labels)
        # the kernel never issues one search per point
        assert c.neighbor_searches < two_blobs.shape[0]

    def test_counters_charged(self, two_blobs):
        c = WorkCounters()
        cellgraph_dbscan(two_blobs, 0.6, 4, counters=c)
        assert c.index_nodes_visited > 0
        assert c.distance_computations > 0


# ---------------------------------------------------------------------------
# differential oracle (paper Section V-D bar)
# ---------------------------------------------------------------------------


class TestDifferentialOracle:
    @pytest.mark.parametrize("eps", [0.45, 0.6, 0.75])
    @pytest.mark.parametrize("minpts", [4, 8])
    def test_quality_vs_plain_dbscan(self, two_blobs, eps, minpts):
        q = quality_score(
            bfs_oracle(two_blobs, eps, minpts),
            cellgraph_dbscan(two_blobs, eps, minpts),
        )
        assert q >= QUALITY_BAR
        # exactness actually buys the maximum score
        assert q == pytest.approx(1.0)

    def test_quality_on_random_databases(self):
        g = resolve_rng(4242)
        for trial in range(5):
            pts = g.uniform(0.0, 12.0, (600, 2))
            q = quality_score(
                bfs_oracle(pts, 0.5, 4), cellgraph_dbscan(pts, 0.5, 4)
            )
            assert q >= QUALITY_BAR, f"trial {trial}: {q}"


# ---------------------------------------------------------------------------
# metamorphic inclusion criteria (Section IV-B) on cellgraph output
# ---------------------------------------------------------------------------


STRICT_RELAXED = [
    ((0.45, 8), (0.45, 4)),   # minpts loosened
    ((0.45, 8), (0.6, 8)),    # eps grown
    ((0.45, 8), (0.75, 3)),   # both relaxed
]


class TestMetamorphicInclusion:
    @pytest.mark.parametrize("strict,relaxed", STRICT_RELAXED)
    def test_core_monotonicity(self, two_blobs, strict, relaxed):
        rs = cellgraph_dbscan(two_blobs, *strict)
        rr = cellgraph_dbscan(two_blobs, *relaxed)
        assert not (rs.core_mask & ~rr.core_mask).any()

    @pytest.mark.parametrize("strict,relaxed", STRICT_RELAXED)
    def test_clustered_monotonicity(self, two_blobs, strict, relaxed):
        rs = cellgraph_dbscan(two_blobs, *strict)
        rr = cellgraph_dbscan(two_blobs, *relaxed)
        assert not ((rs.labels >= 0) & (rr.labels < 0)).any()

    @pytest.mark.parametrize("strict,relaxed", STRICT_RELAXED)
    def test_cluster_containment_on_cores(self, two_blobs, strict, relaxed):
        rs = cellgraph_dbscan(two_blobs, *strict)
        rr = cellgraph_dbscan(two_blobs, *relaxed)
        for cid in range(rs.n_clusters):
            members = np.flatnonzero((rs.labels == cid) & rs.core_mask)
            if members.size:
                assert np.unique(rr.labels[members]).size == 1

    def test_permutation_invariance(self, two_blobs):
        g = resolve_rng(7)
        perm = g.permutation(two_blobs.shape[0])
        base = cellgraph_dbscan(two_blobs, 0.6, 4)
        shuffled = cellgraph_dbscan(two_blobs[perm], 0.6, 4)
        # same partition after undoing the permutation, canonically
        np.testing.assert_array_equal(
            canonical(base.labels[perm]), canonical(shuffled.labels)
        )
        np.testing.assert_array_equal(
            base.core_mask[perm], shuffled.core_mask
        )

    def test_translation_invariance(self, two_blobs):
        base = cellgraph_dbscan(two_blobs, 0.6, 4)
        moved = cellgraph_dbscan(two_blobs + [137.25, -59.5], 0.6, 4)
        np.testing.assert_array_equal(
            canonical(base.labels), canonical(moved.labels)
        )
        np.testing.assert_array_equal(base.core_mask, moved.core_mask)


# ---------------------------------------------------------------------------
# batch-engine wiring: kernel="cellgraph" across every combination
# ---------------------------------------------------------------------------


WIRING_VARIANTS = VariantSet.from_product([0.45, 0.6], [4, 8])


@pytest.fixture(scope="module")
def wiring_reference(two_blobs):
    """Canonical per-variant labels from the serial BFS batch engine."""
    with Session(two_blobs) as session:
        batch = session.run(WIRING_VARIANTS)
    return {v: canonical(batch.results[v].labels) for v in WIRING_VARIANTS}


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
@pytest.mark.parametrize("executor", ["serial", "threads", "processes", "simulated"])
def test_kernel_matches_bfs_reference(
    two_blobs, wiring_reference, executor, scheduler_name, policy_name
):
    with Session(two_blobs, kernel="cellgraph") as session:
        batch = session.run(
            WIRING_VARIANTS,
            executor=executor,
            n_threads=2,
            scheduler=scheduler_name,
            policy=policy_name,
        )
    for v in WIRING_VARIANTS:
        np.testing.assert_array_equal(
            canonical(batch.results[v].labels), wiring_reference[v]
        )


def test_kernel_validation():
    pts = np.zeros((3, 2))
    with pytest.raises(ValueError, match="unknown kernel"):
        Session(pts, kernel="quantum")
    from repro.exec.serial import SerialExecutor

    with pytest.raises(ValueError, match="unknown kernel"):
        SerialExecutor(kernel="quantum")


def test_session_run_kernel_override(two_blobs):
    with Session(two_blobs) as session:
        bfs = session.run(WIRING_VARIANTS)
        cg = session.run(WIRING_VARIANTS, kernel="cellgraph")
    for v in WIRING_VARIANTS:
        np.testing.assert_array_equal(
            cg.results[v].labels, bfs.results[v].labels
        )
        np.testing.assert_array_equal(
            cg.results[v].core_mask, bfs.results[v].core_mask
        )


def test_factory_memoizes_cellgraph_index(two_blobs):
    with Session(two_blobs) as session:
        session.run(WIRING_VARIANTS, kernel="cellgraph")
        kinds = {key[1] for key in session.factory._cache}
        assert "cellgraph" in kinds
        before = len(session.factory)
        session.run(WIRING_VARIANTS, kernel="cellgraph")
        assert len(session.factory) == before  # second run hits the cache
