"""Tests for :mod:`repro.core.variants` (parameters, inclusion criteria)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.variants import Variant, VariantSet, sort_key
from repro.util.errors import ValidationError

eps_vals = st.floats(0.01, 100.0, allow_nan=False)
minpts_vals = st.integers(1, 200)
variants = st.builds(Variant, eps=eps_vals, minpts=minpts_vals)


class TestVariant:
    def test_construction_and_fields(self):
        v = Variant(0.5, 4)
        assert v.eps == 0.5
        assert v.minpts == 4

    def test_hashable_and_equal(self):
        assert Variant(0.5, 4) == Variant(0.5, 4)
        assert len({Variant(0.5, 4), Variant(0.5, 4)}) == 1

    @pytest.mark.parametrize("eps,minpts", [(0.0, 4), (-1.0, 4), (0.5, 0), (0.5, -2)])
    def test_invalid_rejected(self, eps, minpts):
        with pytest.raises(ValidationError):
            Variant(eps, minpts)

    def test_can_reuse_requires_eps_geq_and_minpts_leq(self):
        assert Variant(0.6, 4).can_reuse(Variant(0.2, 32))
        assert Variant(0.2, 4).can_reuse(Variant(0.2, 32))
        assert Variant(0.6, 32).can_reuse(Variant(0.2, 32))
        assert not Variant(0.1, 4).can_reuse(Variant(0.2, 32))
        assert not Variant(0.6, 40).can_reuse(Variant(0.2, 32))

    def test_no_self_reuse(self):
        v = Variant(0.3, 8)
        assert not v.can_reuse(v)

    @given(variants, variants)
    def test_reuse_antisymmetric_unless_equal(self, a, b):
        """Mutual reusability would imply identical parameters."""
        if a.can_reuse(b) and b.can_reuse(a):
            pytest.fail("distinct variants cannot mutually satisfy inclusion")

    @given(variants, variants, variants)
    def test_reuse_transitive(self, a, b, c):
        if a.can_reuse(b) and b.can_reuse(c):
            assert a.can_reuse(c)

    def test_parameter_distance_normalized(self):
        a, b = Variant(0.2, 4), Variant(0.6, 8)
        assert a.parameter_distance(b, eps_span=0.4, minpts_span=4.0) == pytest.approx(2.0)

    def test_distance_symmetric(self):
        a, b = Variant(0.2, 4), Variant(0.6, 8)
        assert a.parameter_distance(b) == b.parameter_distance(a)


class TestVariantSet:
    def test_canonical_order(self):
        vs = VariantSet.from_pairs([(0.4, 4), (0.2, 4), (0.2, 32), (0.4, 8)])
        assert [v.as_tuple() for v in vs] == [
            (0.2, 32),
            (0.2, 4),
            (0.4, 8),
            (0.4, 4),
        ]

    def test_deduplicates(self):
        vs = VariantSet.from_pairs([(0.2, 4), (0.2, 4)])
        assert len(vs) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            VariantSet([])

    def test_non_variant_rejected(self):
        with pytest.raises(ValidationError):
            VariantSet([(0.2, 4)])  # type: ignore[list-item]

    def test_from_product_matches_paper_notation(self):
        """Section V-B example: A={0.1,0.2}, B={1,2}."""
        vs = VariantSet.from_product([0.1, 0.2], [1, 2])
        assert set(v.as_tuple() for v in vs) == {
            (0.1, 1),
            (0.1, 2),
            (0.2, 1),
            (0.2, 2),
        }

    def test_s2_grid_size(self):
        """Table III: |V| = 24."""
        vs = VariantSet.from_product([0.2, 0.4, 0.6], range(4, 33, 4))
        assert len(vs) == 24

    def test_contains_and_getitem(self):
        vs = VariantSet.from_product([0.2], [4, 8])
        assert Variant(0.2, 4) in vs
        assert vs[0] == Variant(0.2, 8)

    def test_eps_and_minpts_values(self):
        vs = VariantSet.from_product([0.4, 0.2], [8, 4])
        assert vs.eps_values == (0.2, 0.4)
        assert vs.minpts_values == (4, 8)

    def test_spans(self):
        vs = VariantSet.from_product([0.2, 0.6], [4, 32])
        assert vs.eps_span == pytest.approx(0.4)
        assert vs.minpts_span == pytest.approx(28.0)

    def test_degenerate_span_fallback(self):
        vs = VariantSet.from_product([0.2], [4])
        assert vs.eps_span > 0
        assert vs.minpts_span > 0

    def test_reusable_sources(self):
        vs = VariantSet.from_product([0.2, 0.4], [4, 8])
        sources = vs.reusable_sources(Variant(0.4, 4))
        assert set(s.as_tuple() for s in sources) == {(0.2, 4), (0.2, 8), (0.4, 8)}

    def test_max_reuse_fraction(self):
        """Section IV-D: f = (|V| - T) / |V|."""
        vs = VariantSet.from_product([0.2, 0.4, 0.6], range(4, 33, 4))
        assert vs.max_reuse_fraction(1) == pytest.approx(23 / 24)
        assert vs.max_reuse_fraction(16) == pytest.approx(8 / 24)
        assert vs.max_reuse_fraction(100) == 0.0

    def test_equality_and_hash(self):
        a = VariantSet.from_product([0.2], [4, 8])
        b = VariantSet.from_pairs([(0.2, 8), (0.2, 4)])
        assert a == b
        assert hash(a) == hash(b)

    @given(st.lists(st.tuples(eps_vals, minpts_vals), min_size=1, max_size=30))
    def test_sorted_by_canonical_key(self, pairs):
        vs = VariantSet.from_pairs(pairs)
        keys = [sort_key(v) for v in vs]
        assert keys == sorted(keys)
