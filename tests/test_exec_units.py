"""Direct unit tests for the executor layer's shared building blocks.

The backends exercise :func:`repro.exec._runner.execute_variant`,
:func:`repro.exec.graph.partition_reuse_chains`, and the calibration
fit only through whole batches; these tests pin their behavior in
isolation — registry eligibility windows, degenerate partition shapes,
and the fit's validation edges.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scheduling import (
    CompletedRegistry,
    PlannedVariant,
    dependency_tree,
)
from repro.core.variants import Variant, VariantSet
from repro.engine.session import Session
from repro.exec.calibration import CalibrationSample, fit_cost_model
from repro.exec.graph import partition_reuse_chains
from repro.exec._runner import execute_variant
from repro.metrics.counters import WorkCounters
from repro.util.errors import ValidationError
from repro.util.rng import resolve_rng


@pytest.fixture(scope="module")
def cloud():
    g = resolve_rng(11)
    return np.vstack([g.normal(0, 0.5, (90, 2)), g.uniform(-2, 2, (30, 2))])


@pytest.fixture(scope="module")
def session(cloud):
    with Session(cloud, dataset="units") as s:
        yield s


class TestExecuteVariant:
    def test_scratch_run_with_empty_registry(self, session):
        vset = VariantSet([Variant(0.5, 4)])
        result, record = execute_variant(
            session.context(),
            PlannedVariant(Variant(0.5, 4)),
            vset,
            CompletedRegistry(),
        )
        assert result.reused_from is None
        assert record.reused_from is None
        assert record.variant == Variant(0.5, 4)
        assert record.response_time > 0
        assert len(result.labels) == session.n_points

    def test_reuse_from_seeded_registry_matches_scratch(self, session):
        vset = VariantSet([Variant(0.4, 4), Variant(0.5, 4)])
        ctx = session.context()
        registry = CompletedRegistry()
        donor_result, _ = execute_variant(
            ctx, PlannedVariant(Variant(0.4, 4)), vset, registry
        )
        registry.add(Variant(0.4, 4), donor_result, finished_at=0.0)
        reused, rec = execute_variant(
            ctx, PlannedVariant(Variant(0.5, 4)), vset, registry
        )
        assert rec.reused_from == Variant(0.4, 4)
        scratch, _ = execute_variant(
            ctx, PlannedVariant(Variant(0.5, 4)), vset, CompletedRegistry()
        )
        assert reused.labels.tobytes() == scratch.labels.tobytes()

    def test_before_window_gates_donor_eligibility(self, session):
        vset = VariantSet([Variant(0.4, 4), Variant(0.5, 4)])
        ctx = session.context()
        registry = CompletedRegistry()
        donor_result, _ = execute_variant(
            ctx, PlannedVariant(Variant(0.4, 4)), vset, registry
        )
        registry.add(Variant(0.4, 4), donor_result, finished_at=5.0)
        early, rec_early = execute_variant(
            ctx, PlannedVariant(Variant(0.5, 4)), vset, registry, before=1.0
        )
        assert rec_early.reused_from is None  # donor not finished yet
        _, rec_late = execute_variant(
            ctx, PlannedVariant(Variant(0.5, 4)), vset, registry, before=5.0
        )
        assert rec_late.reused_from == Variant(0.4, 4)  # inclusive window

    def test_force_scratch_ignores_registry(self, session):
        vset = VariantSet([Variant(0.4, 4), Variant(0.5, 4)])
        ctx = session.context()
        registry = CompletedRegistry()
        donor_result, _ = execute_variant(
            ctx, PlannedVariant(Variant(0.4, 4)), vset, registry
        )
        registry.add(Variant(0.4, 4), donor_result, finished_at=0.0)
        _, rec = execute_variant(
            ctx,
            PlannedVariant(Variant(0.5, 4), force_scratch=True),
            vset,
            registry,
        )
        assert rec.reused_from is None

    def test_response_time_priced_at_requested_concurrency(self, session):
        vset = VariantSet([Variant(0.5, 4)])
        ctx = session.context()
        _, rec = execute_variant(
            ctx, PlannedVariant(Variant(0.5, 4)), vset, CompletedRegistry(),
            concurrency=1,
        )
        assert rec.response_time == pytest.approx(
            ctx.cost_model.duration(rec.counters, 1)
        )


class TestPartitionReuseChains:
    def test_single_variant_set(self):
        groups = partition_reuse_chains(VariantSet([Variant(0.5, 4)]), 4)
        assert groups == [[Variant(0.5, 4)]]

    def test_more_workers_than_chains_leaves_no_empty_group(self):
        vset = VariantSet.from_product([0.4, 0.5], [4])
        groups = partition_reuse_chains(vset, 16)
        assert all(groups), "no empty chain lists may be returned"
        assert sum(len(g) for g in groups) == len(vset)

    def test_partition_covers_every_variant_exactly_once(self):
        vset = VariantSet.from_product([0.3, 0.4, 0.5, 0.6], [4, 6, 8])
        for t in (1, 2, 3, 5, 40):
            groups = partition_reuse_chains(vset, t)
            assert len(groups) <= max(1, t)
            flat = sorted(v.as_tuple() for g in groups for v in g)
            assert flat == sorted(v.as_tuple() for v in vset)

    def test_groups_are_reuse_closed_prefixes(self):
        vset = VariantSet.from_product([0.3, 0.4, 0.5, 0.6], [4, 6])
        tree = dependency_tree(vset)
        for group in partition_reuse_chains(vset, 3):
            seen: set[Variant] = set()
            for v in group:
                parent = next(iter(tree.predecessors(v)), None) if v in tree else None
                # in-group parents always precede their dependents
                if parent is not None and parent in set(group):
                    assert parent in seen
                seen.add(v)


class TestFitCostModel:
    @staticmethod
    def _sample(nodes, cands, searches, reused, wall):
        c = WorkCounters(
            index_nodes_visited=nodes,
            candidates_examined=cands,
            neighbor_searches=searches,
            points_reused=reused,
        )
        return CalibrationSample(counters=c, wall_seconds=wall)

    def test_too_few_samples_raises(self):
        samples = [self._sample(10, 10, 10, 0, 1.0)] * 3
        with pytest.raises(ValidationError, match=">= 4"):
            fit_cost_model(samples)

    def test_nonpositive_wall_raises(self):
        samples = [
            self._sample(10 * i, 5 * i, 2 * i, 0, 0.0 if i == 2 else 1.0)
            for i in range(1, 5)
        ]
        with pytest.raises(ValidationError, match="positive"):
            fit_cost_model(samples)

    def test_rank_deficient_design_raises(self):
        samples = [self._sample(10, 20, 5, 0, 1.0)] * 4
        with pytest.raises(ValidationError, match="rank-deficient"):
            fit_cost_model(samples)

    def test_recovers_known_coefficients(self):
        rng = resolve_rng(3)
        true = (1.0, 0.5, 3.0, 0.25)
        samples = []
        for _ in range(8):
            nodes, cands, searches, reused = (
                int(rng.integers(50, 500)),
                int(rng.integers(50, 500)),
                int(rng.integers(5, 80)),
                int(rng.integers(0, 300)),
            )
            wall = (
                true[0] * nodes
                + true[1] * cands
                + true[2] * searches
                + true[3] * reused
            )
            samples.append(self._sample(nodes, cands, searches, reused, wall))
        model = fit_cost_model(samples, bandwidth_saturation=1.7)
        assert model.node_visit_cost == 1.0  # normalization
        assert model.candidate_cost == pytest.approx(0.5, rel=1e-6)
        assert model.search_overhead == pytest.approx(3.0, rel=1e-6)
        assert model.reuse_copy_cost == pytest.approx(0.25, rel=1e-6)
        assert model.bandwidth_saturation == 1.7
