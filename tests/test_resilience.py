"""Fault tolerance: injection, retries, re-planning, checkpoint/resume.

Covers the resilience subsystem end to end:

* :class:`FaultPlan` / :class:`FaultSpec` — seeded determinism,
  validation, binding, and attempt re-keying for pool respawns;
* :class:`RetryPolicy` — validation and capped exponential backoff;
* result integrity — :func:`corrupt_result` damage is always caught by
  :func:`verify_result`;
* the recovery loop across **all four executor backends** for every
  scheduler x reuse-policy combination: injected crashes and timeouts
  must not change the produced clusterings (canonical label equality
  against a fault-free run);
* permanent failure — the batch completes, dependents re-plan onto
  surviving donors under the inclusion criteria, and the
  :class:`BatchReport` accounts every variant;
* process-pool worker death (``kill`` faults) — pool respawn,
  shared-memory reattach, zero leaked segments;
* :class:`CheckpointStore` — atomic spill, integrity-audited loads,
  fingerprint keying, and ``Session.run(resume=...)`` /
  ``repro sweep --resume`` skipping finished variants;
* the :class:`Session` lifecycle contract
  (:class:`SessionClosedError`) and the ``repro doctor`` CLI.
"""

from __future__ import annotations

import contextlib
import glob
import json
import multiprocessing
from multiprocessing import shared_memory  # repro: allow[shm-lifecycle] (forges leaked segments)

import numpy as np
import pytest

from repro import (
    BatchReport,
    CheckpointStore,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    Session,
    Variant,
    VariantSet,
    VariantStatus,
)
from repro.core.reuse import POLICIES
from repro.core.scheduling import SCHEDULERS, dependency_tree
from repro.resilience.faults import corrupt_result, verify_result
from repro.resilience.report import VariantOutcome
from repro.resilience.runner import classify_replans
from repro.util.errors import (
    CorruptResultError,
    ReproError,
    SessionClosedError,
    ValidationError,
)
from repro.util.rng import resolve_rng

EXECUTORS = ["serial", "threads", "simulated", "processes"]


def _repro_segments() -> set[str]:
    return {p.rsplit("/", 1)[-1] for p in glob.glob("/dev/shm/repro_*")}


def canonical(labels: np.ndarray) -> np.ndarray:
    """Labels renumbered by first appearance (noise stays -1).

    Different reuse sources (and the process backend's chain
    partitioning) permute cluster *ids* while preserving the partition
    itself; canonicalizing turns "same clustering" into array equality.
    """
    out = np.full(labels.shape, -1, dtype=labels.dtype)
    mapping: dict = {}
    for i, lab in enumerate(labels):
        if lab < 0:
            continue
        if lab not in mapping:
            mapping[lab] = len(mapping)
        out[i] = mapping[lab]
    return out


@pytest.fixture(scope="module")
def points():
    g = resolve_rng(4242)
    return np.ascontiguousarray(
        np.vstack([g.normal(0, 0.5, (100, 2)), g.normal(6, 0.5, (100, 2))])
    )


#: 12 variants — the acceptance scenario's minimum batch size.
VSET = VariantSet.from_product([0.4, 0.5, 0.6, 0.7], [4, 6, 8])


@pytest.fixture(scope="module")
def baseline(points):
    """Fault-free canonical labels per variant (serial reference)."""
    with Session(points) as s:
        batch = s.run(VSET)
    return {v: canonical(batch.results[v].labels) for v in VSET}


def assert_canonical_equal(batch, baseline, variants=VSET):
    for v in variants:
        assert np.array_equal(
            canonical(batch.results[v].labels), baseline[v]
        ), f"labels diverged for {v}"


# ----------------------------------------------------------------------
# FaultPlan / FaultSpec
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_random_is_seed_deterministic(self):
        a = FaultPlan.random(20, n_crashes=3, n_hangs=2, n_corruptions=1, seed=7)
        b = FaultPlan.random(20, n_crashes=3, n_hangs=2, n_corruptions=1, seed=7)
        assert a.specs == b.specs
        c = FaultPlan.random(20, n_crashes=3, n_hangs=2, n_corruptions=1, seed=8)
        assert a.specs != c.specs

    def test_random_targets_are_distinct(self):
        plan = FaultPlan.random(10, n_crashes=5, n_hangs=5, seed=3)
        assert len({s.index for s in plan.specs}) == 10

    def test_random_rejects_overcommit(self):
        with pytest.raises(ValidationError):
            FaultPlan.random(3, n_crashes=2, n_hangs=2)

    def test_spec_validation(self):
        with pytest.raises(ValidationError):
            FaultSpec("explode", 0)
        with pytest.raises(ValidationError):
            FaultSpec("crash", 0, phase="middle")
        with pytest.raises(ValidationError):
            FaultSpec("crash", -1)
        with pytest.raises(ValidationError):
            FaultSpec("corrupt", 0, phase="start")

    def test_bind_and_find(self):
        plan = FaultPlan([FaultSpec("crash", 1, attempt=2)])
        bound = plan.bind(VSET)
        assert bound.find(VSET[1], 2, "start") is not None
        assert bound.find(VSET[1], 0, "start") is None
        assert bound.find(VSET[0], 2, "start") is None

    def test_bind_ignores_out_of_range(self):
        plan = FaultPlan([FaultSpec("crash", 999)])
        assert not plan.bind(VSET)

    def test_shifted_rekeys_attempts(self):
        plan = FaultPlan(
            [FaultSpec("kill", 0, attempt=0), FaultSpec("crash", 1, attempt=2)]
        )
        bound = plan.bind(VSET)
        shifted = bound.shifted(1)
        # The attempt-0 kill already had its chance; the attempt-2
        # crash now fires on the resubmitted worker's attempt 1.
        assert shifted.find(VSET[0], 0, "start") is None
        assert shifted.find(VSET[1], 1, "start") is not None
        assert bound.shifted(0) is bound


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValidationError):
            RetryPolicy(deadline_s=0.0)
        with pytest.raises(ValidationError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_caps(self):
        p = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.3)
        assert p.backoff_s(0) == pytest.approx(0.1)
        assert p.backoff_s(1) == pytest.approx(0.2)
        assert p.backoff_s(5) == pytest.approx(0.3)

    def test_zero_base_disables_backoff(self):
        assert RetryPolicy().backoff_s(4) == 0.0

    def test_max_attempts(self):
        assert RetryPolicy(max_retries=2).max_attempts == 3


class TestIntegrity:
    def test_corrupt_result_fails_verify(self, points):
        with Session(points) as s:
            result = s.run(VSET).results[VSET[0]]
        verify_result(result, len(points))
        corrupt_result(result)
        with pytest.raises(CorruptResultError):
            verify_result(result, len(points))

    def test_verify_rejects_wrong_length(self, points):
        with Session(points) as s:
            result = s.run(VSET).results[VSET[0]]
        with pytest.raises(CorruptResultError):
            verify_result(result, len(points) + 1)


# ----------------------------------------------------------------------
# Recovery across every backend x scheduler x policy
# ----------------------------------------------------------------------
#: Crashes on two donors plus a hang that converts to a timeout under
#: the deadline; retries must absorb all three without changing labels.
RECOVERY_PLAN = FaultPlan(
    [
        FaultSpec("crash", 0),
        FaultSpec("crash", 3),
        FaultSpec("hang", 5, hang_s=5.0),
        FaultSpec("corrupt", 7, phase="finish"),
    ]
)
RECOVERY_POLICY = RetryPolicy(max_retries=2, deadline_s=0.25)


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
@pytest.mark.parametrize("policy", sorted(POLICIES))
class TestRecoveryEquality:
    def test_faulted_run_matches_fault_free(
        self, points, baseline, executor, scheduler, policy
    ):
        with Session(points) as s:
            batch = s.run(
                VSET,
                executor=executor,
                n_threads=3,
                scheduler=scheduler,
                policy=policy,
                fault_plan=RECOVERY_PLAN,
                retry_policy=RECOVERY_POLICY,
            )
        report = batch.report
        assert report is not None and report.complete
        assert set(batch.results) == set(VSET)
        assert len(report) == len(VSET)
        assert report.retried, "injected faults should surface as retries"
        assert_canonical_equal(batch, baseline)


# ----------------------------------------------------------------------
# Permanent failure + re-planning
# ----------------------------------------------------------------------
def _permanent(index: int, kind: str = "crash", **kw) -> list[FaultSpec]:
    """Specs that fire on every attempt the recovery policy allows."""
    return [
        FaultSpec(kind, index, attempt=a, **kw)
        for a in range(RECOVERY_POLICY.max_attempts)
    ]


class TestPermanentFailure:
    def test_batch_survives_and_replans(self, points, baseline):
        donor = VSET[0]
        plan = FaultPlan(_permanent(0))
        with Session(points) as s:
            batch = s.run(
                VSET, fault_plan=plan, retry_policy=RECOVERY_POLICY
            )
        report = batch.report
        assert report.failed == [donor]
        assert donor not in batch.results
        assert set(batch.results) == set(VSET) - {donor}
        assert_canonical_equal(batch, baseline, set(VSET) - {donor})
        # The static tree's dependents of the failed donor completed
        # anyway and are accounted as re-planned.
        tree = dependency_tree(VSET)
        dependents = set(tree.successors(donor))
        assert dependents, "fixture donor must have dependents"
        assert set(report.replanned) == dependents
        for v in dependents:
            assert report[v].replanned_from == donor

    def test_replanning_respects_inclusion_criteria(self, points):
        plan = FaultPlan(_permanent(0))
        with Session(points) as s:
            batch = s.run(VSET, fault_plan=plan, retry_policy=RECOVERY_POLICY)
        failed = set(batch.report.failed)
        for rec in batch.record.records:
            if rec.reused_from is None:
                continue
            assert rec.reused_from not in failed
            assert rec.variant.can_reuse(rec.reused_from)

    def test_faults_without_policy_capture_instead_of_raise(self, points):
        plan = FaultPlan([FaultSpec("crash", 0)])
        with Session(points) as s:
            batch = s.run(VSET, fault_plan=plan)  # no retry policy
        assert batch.report.failed == [VSET[0]]
        assert len(batch.results) == len(VSET) - 1

    def test_plain_run_keeps_seed_semantics(self, points, baseline):
        with Session(points) as s:
            batch = s.run(VSET)
        assert batch.report is None
        assert_canonical_equal(batch, baseline)


# ----------------------------------------------------------------------
# Acceptance scenario: crashed donors + a hung variant, no abort
# ----------------------------------------------------------------------
class TestAcceptanceScenario:
    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_two_dead_donors_one_hang(self, points, baseline, executor):
        assert len(VSET) >= 12
        tree = dependency_tree(VSET)
        donors = [v for v in VSET if any(True for _ in tree.successors(v))]
        d1, d2 = sorted(range(len(VSET)), key=lambda i: VSET[i] not in donors)[:2]
        hung = next(
            i for i in range(len(VSET)) if i not in (d1, d2)
        )
        plan = FaultPlan(
            _permanent(d1)
            + _permanent(d2)
            + [FaultSpec("hang", hung, hang_s=5.0)]
        )
        before = _repro_segments()
        with Session(points) as s:
            batch = s.run(
                VSET,
                executor=executor,
                n_threads=4,
                fault_plan=plan,
                retry_policy=RECOVERY_POLICY,
            )
        report = batch.report
        failed = {VSET[d1], VSET[d2]}
        assert set(report.failed) == failed
        assert set(batch.results) == set(VSET) - failed
        assert report[VSET[hung]].status in (
            VariantStatus.RETRIED,
            VariantStatus.REPLANNED,
        )
        assert_canonical_equal(batch, baseline, set(VSET) - failed)
        # Re-planning stayed inclusion-legal and avoided dead donors.
        for rec in batch.record.records:
            if rec.reused_from is not None:
                assert rec.reused_from not in failed
                assert rec.variant.can_reuse(rec.reused_from)
        assert _repro_segments() == before, "leaked shared-memory segments"


# ----------------------------------------------------------------------
# Process-pool worker death
# ----------------------------------------------------------------------
class TestProcPoolKill:
    def test_killed_worker_is_respawned(self, points, baseline):
        plan = FaultPlan([FaultSpec("kill", 2)])
        before = _repro_segments()
        with Session(points) as s:
            batch = s.run(
                VSET,
                executor="processes",
                n_threads=3,
                fault_plan=plan,
                retry_policy=RetryPolicy(max_retries=2),
            )
        report = batch.report
        assert report.complete
        assert set(batch.results) == set(VSET)
        assert report.retried, "the killed group must resurface as retried"
        for v in report.retried:
            assert report[v].attempts > 1
        assert_canonical_equal(batch, baseline)
        assert _repro_segments() == before, "leaked shared-memory segments"

    def test_kill_downgrades_to_crash_in_process(self, points, baseline):
        # In-process backends must never honor a kill (it would take
        # down the caller's interpreter); it degrades to a crash.
        plan = FaultPlan([FaultSpec("kill", 2)])
        with Session(points) as s:
            batch = s.run(
                VSET, fault_plan=plan, retry_policy=RetryPolicy(max_retries=1)
            )
        assert batch.report.complete
        assert_canonical_equal(batch, baseline)


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_roundtrip(self, points, tmp_path):
        with Session(points) as s:
            result = s.run(VSET).results[VSET[0]]
            fp = s.store.fingerprint
        store = CheckpointStore(tmp_path, fp, len(points))
        store.save(result)
        loaded = store.load(VSET[0])
        assert loaded is not None
        assert np.array_equal(loaded.labels, result.labels)
        assert np.array_equal(loaded.core_mask, result.core_mask)
        assert loaded.variant == VSET[0]
        assert store.completed() == [VSET[0]]

    def test_missing_returns_none(self, tmp_path):
        store = CheckpointStore(tmp_path, "abc", 10)
        assert store.load(Variant(0.5, 4)) is None

    def test_damaged_entry_discarded(self, points, tmp_path):
        with Session(points) as s:
            result = s.run(VSET).results[VSET[0]]
            fp = s.store.fingerprint
        store = CheckpointStore(tmp_path, fp, len(points))
        path = store.save(result)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert store.load(VSET[0]) is None
        assert not path.exists(), "damaged entry must be removed"

    def test_no_tmp_files_left(self, points, tmp_path):
        with Session(points) as s:
            result = s.run(VSET).results[VSET[0]]
            fp = s.store.fingerprint
        store = CheckpointStore(tmp_path, fp, len(points))
        store.save(result)
        assert not list(store.dir.glob(".tmp_*"))

    def test_clear(self, points, tmp_path):
        with Session(points) as s:
            batch = s.run(VSET)
            fp = s.store.fingerprint
        store = CheckpointStore(tmp_path, fp, len(points))
        for v in list(VSET)[:3]:
            store.save(batch.results[v])
        assert store.clear() == 3
        assert store.completed() == []


class TestSessionResume:
    def test_second_run_resumes_everything(self, points, baseline, tmp_path):
        with Session(points) as s:
            first = s.run(VSET, resume=tmp_path)
            assert first.report is not None
            assert len(first.report.ok) == len(VSET)
            second = s.run(VSET, resume=tmp_path)
        assert len(second.report.resumed) == len(VSET)
        assert all(second.report[v].attempts == 0 for v in VSET)
        assert_canonical_equal(second, baseline)

    def test_interrupted_run_resumes_only_unfinished(
        self, points, baseline, tmp_path
    ):
        # "Kill" the first run by permanently failing three variants;
        # the survivors are checkpointed.
        plan = FaultPlan([FaultSpec("crash", i) for i in (0, 4, 8)])
        with Session(points) as s:
            first = s.run(VSET, fault_plan=plan, resume=tmp_path)
            assert len(first.report.failed) == 3
            second = s.run(VSET, resume=tmp_path)
        assert len(second.report.resumed) == len(VSET) - 3
        recomputed = set(second.report.ok) | set(second.report.replanned)
        assert recomputed == {VSET[i] for i in (0, 4, 8)}
        assert second.report.complete
        assert_canonical_equal(second, baseline)

    def test_resume_is_fingerprint_keyed(self, points, tmp_path):
        with Session(points) as s:
            s.run(VSET, resume=tmp_path)
        other = points + 0.001  # different database, same shape
        with Session(other) as s:
            batch = s.run(VSET, resume=tmp_path)
        assert not batch.report.resumed, "foreign checkpoints must not load"

    @pytest.mark.parametrize("executor", ["simulated", "processes"])
    def test_resume_across_backends(self, points, baseline, tmp_path, executor):
        with Session(points) as s:
            s.run(VariantSet(list(VSET)[:6]), resume=tmp_path)
            batch = s.run(VSET, executor=executor, n_threads=2, resume=tmp_path)
        assert len(batch.report.resumed) == 6
        assert batch.report.complete
        assert_canonical_equal(batch, baseline)


# ----------------------------------------------------------------------
# BatchReport / classification
# ----------------------------------------------------------------------
class TestBatchReport:
    def test_counts_and_summary(self):
        report = BatchReport(
            {
                VSET[0]: VariantOutcome(VSET[0], VariantStatus.OK),
                VSET[1]: VariantOutcome(VSET[1], VariantStatus.RETRIED, attempts=2),
                VSET[2]: VariantOutcome(VSET[2], VariantStatus.FAILED, attempts=3),
            }
        )
        assert report.counts()["ok"] == 1
        assert report.total_attempts == 6
        assert not report.complete
        assert "1 failed" in report.summary()
        rows = report.as_rows()
        assert rows[0]["variant"] == VSET[0].as_tuple()

    def test_merge(self):
        a = BatchReport({VSET[0]: VariantOutcome(VSET[0], VariantStatus.OK)})
        b = BatchReport({VSET[1]: VariantOutcome(VSET[1], VariantStatus.FAILED)})
        a.merge(b)
        assert len(a) == 2 and VSET[1] in a

    def test_classify_replans_is_idempotent(self):
        tree = dependency_tree(VSET)
        donor = VSET[0]
        child = next(iter(tree.successors(donor)))
        report = BatchReport(
            {
                donor: VariantOutcome(donor, VariantStatus.FAILED),
                child: VariantOutcome(child, VariantStatus.OK),
            }
        )
        classify_replans(report, VSET)
        assert report[child].status is VariantStatus.REPLANNED
        classify_replans(report, VSET)
        assert report[child].status is VariantStatus.REPLANNED
        # Once the donor is no longer failed, the mark is withdrawn.
        report.outcomes[donor] = VariantOutcome(donor, VariantStatus.OK)
        classify_replans(report, VSET)
        assert report[child].status is VariantStatus.OK


class TestObservability:
    def test_resilience_events_and_outcomes_in_registry(self, points):
        from repro.obs import MetricsRegistry, Tracer, use_tracer

        plan = FaultPlan([FaultSpec("crash", 0)])
        tracer = Tracer()
        with use_tracer(tracer), Session(points) as s:
            batch = s.run(
                VSET, fault_plan=plan, retry_policy=RetryPolicy(max_retries=1)
            )
        registry = MetricsRegistry.from_batch(batch, tracer)
        events = registry.resilience_events()
        assert events.get("variant_retry", 0) >= 1
        assert registry.meta["outcomes"]["retried"] == 1
        assert "resilience:" in registry.summary()


# ----------------------------------------------------------------------
# Session lifecycle
# ----------------------------------------------------------------------
class TestSessionLifecycle:
    def test_error_hierarchy(self):
        assert issubclass(SessionClosedError, ValueError)
        assert issubclass(SessionClosedError, ReproError)

    def test_double_close_raises(self, points):
        session = Session(points)
        session.close()
        with pytest.raises(SessionClosedError, match="already closed"):
            session.close()

    def test_run_and_context_after_close_raise(self, points):
        session = Session(points)
        session.close()
        with pytest.raises(SessionClosedError):
            session.run(VSET)
        with pytest.raises(SessionClosedError):
            session.context()

    def test_close_during_run_raises(self, points):
        session = Session(points)
        session._active_runs = 1  # a run is executing
        with pytest.raises(SessionClosedError, match="still executing"):
            session.close()
        session._active_runs = 0
        session.close()

    def test_context_manager_tolerates_manual_close(self, points):
        with Session(points) as session:
            session.close()  # __exit__ must not double-close


# ----------------------------------------------------------------------
# shm audit + doctor CLI
# ----------------------------------------------------------------------
def _dead_pid() -> int:
    proc = multiprocessing.Process(target=lambda: None)
    proc.start()
    proc.join()
    return proc.pid


@pytest.fixture
def orphan_segment():
    """A repro_* segment whose 'creator' pid is dead (a fake leak)."""
    name = f"repro_{_dead_pid()}_feed01"
    seg = shared_memory.SharedMemory(create=True, size=64, name=name)  # repro: allow[shm-lifecycle]
    seg.close()
    with contextlib.suppress(Exception):
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    yield name
    with contextlib.suppress(FileNotFoundError):
        stale = shared_memory.SharedMemory(name=name)  # repro: allow[shm-lifecycle]
        stale.close()
        stale.unlink()


class TestAudit:
    def test_scan_reports_orphan(self, orphan_segment):
        from repro.resilience.audit import scan_segments

        segments = {s.name: s for s in scan_segments()}
        assert orphan_segment in segments
        info = segments[orphan_segment]
        assert info.orphaned and not info.alive
        assert info.as_dict()["orphaned"] is True

    def test_live_segment_is_not_orphaned(self):
        from repro.engine.shm import create_shm, reclaim_segments
        from repro.resilience.audit import scan_segments

        shm = create_shm(64, "live")
        try:
            segments = {s.name: s for s in scan_segments()}
            assert segments[shm.name].orphaned is False
        finally:
            shm.close()
            shm.unlink()  # repro: allow[shm-lifecycle] (audit test owns the raw segment)
            reclaim_segments([shm.name])

    def test_reclaim_segments_audits_owned_leftovers(self):
        from repro.engine.shm import create_shm, owned_segments, reclaim_segments

        shm = create_shm(64, "leak")
        shm.close()  # owner "forgot" to unlink
        assert shm.name in owned_segments()
        assert reclaim_segments([shm.name]) == [shm.name]
        assert shm.name not in owned_segments()
        assert shm.name not in _repro_segments()


class TestDoctorCLI:
    def test_doctor_clean(self, capsys):
        from repro.cli import main

        assert main(["doctor"]) == 0
        # Either no segments at all, or only live ones from this process.
        out = capsys.readouterr().out
        assert "ORPHANED" not in out

    def test_doctor_lists_orphan(self, orphan_segment, capsys):
        from repro.cli import main

        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert orphan_segment in out and "ORPHANED" in out

    def test_doctor_json(self, orphan_segment, capsys):
        from repro.cli import main

        assert main(["doctor", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {s["name"] for s in payload["segments"]}
        assert orphan_segment in names
        assert payload["orphaned"] >= 1

    def test_doctor_unlink_removes_orphan(self, orphan_segment, capsys):
        from repro.cli import main

        assert main(["doctor", "--unlink", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert orphan_segment in payload["removed"]
        assert orphan_segment not in _repro_segments()


# ----------------------------------------------------------------------
# sweep CLI: --resume / --retries / status column
# ----------------------------------------------------------------------
class TestSweepResumeCLI:
    @pytest.fixture
    def dataset_file(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "ds.npz"
        assert main(["generate", "cF_10k_5N", "--scale", "0.06", "-o", str(out)]) == 0
        return out

    def test_sweep_resume_skips_finished(self, dataset_file, tmp_path, capsys):
        from repro.cli import main

        ckpt = tmp_path / "ckpt"
        args = [
            "sweep", str(dataset_file),
            "--minpts", "4,8", "--resume", str(ckpt),
        ]
        # First (interrupted) run covers part of the grid...
        assert main(args + ["--eps", "2.0"]) == 0
        capsys.readouterr()
        # ...the resumed run recomputes only the rest.
        assert main(args + ["--eps", "2.0,2.5"]) == 0
        out = capsys.readouterr().out
        assert "2 resumed" in out
        assert "status" in out

    def test_sweep_retries_flag_builds_policy(self, dataset_file, capsys):
        from repro.cli import main

        rc = main(
            [
                "sweep", str(dataset_file),
                "--eps", "2.0", "--minpts", "4",
                "--retries", "2", "--deadline", "30",
            ]
        )
        assert rc == 0
        assert "1 ok" in capsys.readouterr().out
