"""Tests for VariantDBSCAN (Algorithms 3 & 4).

The headline correctness property, straight from Section V-D of the
paper: a variant computed by reusing another variant's results must be
(near-)identical to computing it from scratch — the paper reports
quality >= 0.998, and on these test datasets we require >= 0.99 with
most cases exactly 1.0.  We also check the monotonicity the inclusion
criteria rest on: relaxing parameters never shrinks a cluster.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dbscan import dbscan
from repro.core.result import NOISE
from repro.core.reuse import CLUS_DEFAULT, CLUS_DENSITY, CLUS_PTS_SQUARED
from repro.core.variant_dbscan import variant_dbscan
from repro.core.variants import Variant
from repro.exec.base import IndexPair
from repro.metrics.counters import WorkCounters
from repro.metrics.quality import quality_score
from repro.util.errors import ReuseCriteriaError, ValidationError


@pytest.fixture(scope="module")
def blob_indexes(request):
    return None  # placeholder; built per-dataset below


def run_pair(points, src, dst, policy=CLUS_DENSITY, counters=None):
    """Cluster ``src`` from scratch, then ``dst`` reusing it."""
    indexes = IndexPair.build(points, 16)
    prev = dbscan(points, src.eps, src.minpts, index=indexes.t_low)
    res = variant_dbscan(
        points,
        dst,
        prev,
        t_high=indexes.t_high,
        t_low=indexes.t_low,
        reuse_policy=policy,
        counters=counters,
    )
    ref = dbscan(points, dst.eps, dst.minpts, index=indexes.t_low)
    return prev, res, ref


PAIRS = [
    (Variant(0.5, 8), Variant(0.5, 4)),   # relax minpts
    (Variant(0.5, 4), Variant(0.9, 4)),   # grow eps
    (Variant(0.4, 12), Variant(0.8, 4)),  # both
    (Variant(0.5, 4), Variant(6.0, 4)),   # massive eps growth (merges blobs)
]


class TestEquivalenceWithScratch:
    @pytest.mark.parametrize("src,dst", PAIRS, ids=[f"{a}->{b}" for a, b in PAIRS])
    @pytest.mark.parametrize("policy", [CLUS_DEFAULT, CLUS_DENSITY, CLUS_PTS_SQUARED])
    def test_blobs_quality(self, two_blobs, src, dst, policy):
        _, res, ref = run_pair(two_blobs, src, dst, policy)
        assert quality_score(ref, res) >= 0.99

    @pytest.mark.parametrize("src,dst", PAIRS[:2])
    def test_synthetic_quality(self, small_synthetic, src, dst):
        points, _ = small_synthetic
        _, res, ref = run_pair(points, Variant(src.eps * 2, src.minpts), Variant(dst.eps * 2, dst.minpts))
        assert quality_score(ref, res) >= 0.99

    def test_same_cluster_and_noise_counts_on_blobs(self, two_blobs):
        _, res, ref = run_pair(two_blobs, Variant(0.5, 8), Variant(0.6, 4))
        assert res.n_clusters == ref.n_clusters
        assert abs(res.n_noise - ref.n_noise) <= 2  # border-order slack


class TestMonotonicity:
    """Inclusion criteria guarantee: reused clusters only grow."""

    @pytest.mark.parametrize("src,dst", PAIRS)
    def test_old_cluster_members_stay_clustered(self, two_blobs, src, dst):
        prev, res, _ = run_pair(two_blobs, src, dst)
        was_clustered = prev.labels >= 0
        assert (res.labels[was_clustered] >= 0).all()

    def test_old_comembers_stay_comembers(self, two_blobs):
        prev, res, _ = run_pair(two_blobs, Variant(0.5, 8), Variant(0.7, 4))
        for c in range(prev.n_clusters):
            members = np.flatnonzero(prev.labels == c)
            assert np.unique(res.labels[members]).size == 1

    def test_old_core_points_remain_core(self, two_blobs):
        prev, res, _ = run_pair(two_blobs, Variant(0.5, 8), Variant(0.7, 4))
        assert (res.core_mask[prev.core_mask]).all()


class TestReuseAccounting:
    def test_reuse_fraction_positive_and_bounded(self, two_blobs):
        _, res, _ = run_pair(two_blobs, Variant(0.5, 8), Variant(0.6, 4))
        assert 0.0 < res.reuse_fraction <= 1.0
        assert res.points_reused == res.counters.points_reused

    def test_reused_from_recorded(self, two_blobs):
        prev, res, _ = run_pair(two_blobs, Variant(0.5, 8), Variant(0.6, 4))
        assert res.reused_from == prev.variant

    def test_reuse_saves_neighbor_searches(self, two_blobs):
        c = WorkCounters()
        _, res, _ = run_pair(two_blobs, Variant(0.5, 8), Variant(0.5, 4), counters=c)
        c_ref = WorkCounters()
        dbscan(two_blobs, 0.5, 4, counters=c_ref)
        assert c.neighbor_searches < c_ref.neighbor_searches

    def test_scratch_path_when_no_previous(self, two_blobs):
        res = variant_dbscan(two_blobs, Variant(0.6, 4))
        ref = dbscan(two_blobs, 0.6, 4)
        assert quality_score(ref, res) == pytest.approx(1.0)
        assert res.reused_from is None
        assert res.points_reused == 0

    def test_sweep_counters_populated(self, two_blobs):
        c = WorkCounters()
        run_pair(two_blobs, Variant(0.5, 8), Variant(0.6, 4), counters=c)
        assert c.cluster_mbb_sweeps >= 1
        assert c.points_reused > 0


class TestValidation:
    def test_inclusion_criteria_enforced(self, two_blobs):
        indexes = IndexPair.build(two_blobs, 16)
        prev = dbscan(two_blobs, 0.5, 4, index=indexes.t_low)
        with pytest.raises(ReuseCriteriaError):
            variant_dbscan(two_blobs, Variant(0.4, 4), prev, t_high=indexes.t_high, t_low=indexes.t_low)
        with pytest.raises(ReuseCriteriaError):
            variant_dbscan(two_blobs, Variant(0.6, 8), prev, t_high=indexes.t_high, t_low=indexes.t_low)

    def test_self_reuse_rejected(self, two_blobs):
        prev = dbscan(two_blobs, 0.5, 4)
        with pytest.raises(ReuseCriteriaError):
            variant_dbscan(two_blobs, Variant(0.5, 4), prev)

    def test_previous_without_variant_rejected(self, two_blobs):
        prev = dbscan(two_blobs, 0.5, 4)
        prev.variant = None
        with pytest.raises(ReuseCriteriaError):
            variant_dbscan(two_blobs, Variant(0.6, 4), prev)

    def test_size_mismatch_rejected(self, two_blobs):
        prev = dbscan(two_blobs[:-5], 0.5, 4)
        with pytest.raises(ValidationError):
            variant_dbscan(two_blobs, Variant(0.6, 4), prev)


class TestChainsAndEdgeCases:
    def test_three_step_chain_stays_faithful(self, two_blobs):
        indexes = IndexPair.build(two_blobs, 16)
        a = dbscan(two_blobs, 0.4, 12, index=indexes.t_low)
        b = variant_dbscan(two_blobs, Variant(0.5, 8), a, t_high=indexes.t_high, t_low=indexes.t_low)
        c = variant_dbscan(two_blobs, Variant(0.7, 4), b, t_high=indexes.t_high, t_low=indexes.t_low)
        ref = dbscan(two_blobs, 0.7, 4, index=indexes.t_low)
        assert quality_score(ref, c) >= 0.99

    def test_previous_all_noise(self, uniform_cloud):
        """Reusing an all-noise result degenerates to scratch clustering."""
        indexes = IndexPair.build(uniform_cloud, 16)
        prev = dbscan(uniform_cloud, 0.2, 30, index=indexes.t_low)
        assert prev.n_clusters == 0
        res = variant_dbscan(uniform_cloud, Variant(1.5, 5), prev, t_high=indexes.t_high, t_low=indexes.t_low)
        ref = dbscan(uniform_cloud, 1.5, 5, index=indexes.t_low)
        assert quality_score(ref, res) >= 0.99
        assert res.points_reused == 0

    def test_merging_blobs_destroys_one_cluster(self, two_blobs):
        """At eps 6 the two blobs merge; one old cluster must be absorbed."""
        prev, res, ref = run_pair(two_blobs, Variant(0.5, 4), Variant(6.0, 4))
        assert prev.n_clusters >= 2
        assert res.n_clusters == ref.n_clusters
        # merged: strictly fewer clusters than the source
        assert res.n_clusters < prev.n_clusters

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 20, allow_nan=False), st.floats(0, 20, allow_nan=False)),
            min_size=0,
            max_size=50,
        ),
        st.floats(0.3, 3.0),
        st.integers(2, 6),
        st.floats(1.05, 2.0),
        st.integers(0, 3),
    )
    def test_property_reuse_equals_scratch(self, pts, eps, minpts, eps_mult, minpts_drop):
        arr = np.asarray(pts, dtype=np.float64).reshape(-1, 2)
        dst = Variant(eps * eps_mult, max(1, minpts - minpts_drop))
        if arr.shape[0] == 0:
            return
        indexes = IndexPair.build(arr, 8)
        prev = dbscan(arr, eps, minpts, index=indexes.t_low)
        res = variant_dbscan(arr, dst, prev, t_high=indexes.t_high, t_low=indexes.t_low)
        ref = dbscan(arr, dst.eps, dst.minpts, index=indexes.t_low)
        assert quality_score(ref, res) >= 0.95
        # monotonicity under the inclusion criteria
        assert (res.labels[prev.labels >= 0] >= 0).all()
