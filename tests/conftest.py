"""Shared fixtures: small deterministic point sets used across the suite.

Every synthetic fixture draws through :func:`repro.util.rng.resolve_rng`
with a pinned seed — the same normalization path the library itself
uses — so the suite never touches NumPy's global RNG and every fixture
is bit-identical across runs, platforms, and pytest orderings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticSpec, generate_synthetic
from repro.util.rng import resolve_rng


@pytest.fixture(scope="session")
def rng():
    return resolve_rng(20160523)  # IPDPS 2016 conference date


@pytest.fixture(scope="session")
def two_blobs():
    """Two well-separated Gaussian blobs plus scattered outliers.

    At eps ~0.6 / minpts 4 this clusters into exactly the two blobs;
    many tests rely on that known structure.
    """
    g = resolve_rng(7)
    a = g.normal(0.0, 0.4, (150, 2))
    b = g.normal(0.0, 0.4, (150, 2)) + [8.0, 8.0]
    outliers = g.uniform(-4.0, 12.0, (12, 2))
    # Keep outliers away from the blobs so the expected structure is
    # stable: reject anything within 2 units of a blob center.
    keep = (np.linalg.norm(outliers - [0, 0], axis=1) > 2.5) & (
        np.linalg.norm(outliers - [8, 8], axis=1) > 2.5
    )
    return np.ascontiguousarray(np.vstack([a, b, outliers[keep]]))


@pytest.fixture(scope="session")
def small_synthetic():
    """A deterministic ~2k-point cF-style dataset with ground truth."""
    spec = SyntheticSpec(
        n_points=2000,
        noise_fraction=0.1,
        extent=(60.0, 30.0),
        cluster_sigma=1.0,
        n_clusters_override=6,
    )
    points, truth = generate_synthetic(spec, seed=11)
    return points, truth


@pytest.fixture(scope="session")
def uniform_cloud():
    """300 uniform points — mostly noise at small eps."""
    g = resolve_rng(23)
    return g.uniform(0.0, 30.0, (300, 2))
