"""Tests for the OPTICS baseline (:mod:`repro.baselines.optics`).

The defining property: extracting at any ``eps <= delta`` must match
plain DBSCAN at ``(eps, minpts)`` up to border-point order-dependence.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import extract_dbscan, optics
from repro.core.dbscan import dbscan
from repro.metrics.quality import quality_score
from repro.util.rng import resolve_rng

coord = st.floats(0.0, 20.0, allow_nan=False)


class TestOrdering:
    def test_order_is_permutation(self, two_blobs):
        res = optics(two_blobs, 1.0, 4)
        assert sorted(res.order.tolist()) == list(range(len(two_blobs)))

    def test_first_point_unreachable(self, two_blobs):
        res = optics(two_blobs, 1.0, 4)
        assert np.isinf(res.reachability[0])

    def test_reachability_at_least_core_distance_of_predecessor_component(
        self, two_blobs
    ):
        res = optics(two_blobs, 1.0, 4)
        finite = np.isfinite(res.reachability)
        assert (res.reachability[finite] >= 0).all()

    def test_core_distance_definition(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [10.0, 0.0]])
        res = optics(pts, 5.0, 3)
        # minpts=3 counting self: point 1's 3rd closest (incl. itself) is
        # at distance 1 (points 0 and 2).
        assert res.core_distance[1] == pytest.approx(1.0)
        # point 3 has fewer than 3 neighbors within delta=5 -> inf
        assert np.isinf(res.core_distance[3])

    def test_components_each_start_with_inf(self):
        pts = np.vstack(
            [resolve_rng(0).normal(0, 0.2, (30, 2)),
             resolve_rng(1).normal(50, 0.2, (30, 2))]
        )
        res = optics(pts, 2.0, 4)
        assert int(np.isinf(res.reachability).sum()) >= 2

    def test_one_search_per_point(self, two_blobs):
        res = optics(two_blobs, 1.0, 4)
        assert res.counters.neighbor_searches == len(two_blobs)


class TestExtraction:
    @pytest.mark.parametrize("eps", [0.4, 0.6, 1.0, 1.5])
    def test_matches_dbscan(self, two_blobs, eps):
        ordering = optics(two_blobs, 1.5, 4)
        ext = extract_dbscan(ordering, eps)
        ref = dbscan(two_blobs, eps, 4)
        assert quality_score(ref, ext) >= 0.99
        assert ext.n_clusters == ref.n_clusters

    def test_eps_above_delta_rejected(self, two_blobs):
        ordering = optics(two_blobs, 0.5, 4)
        with pytest.raises(ValueError):
            extract_dbscan(ordering, 0.6)

    def test_core_masks_match_dbscan(self, two_blobs):
        ordering = optics(two_blobs, 1.0, 4)
        ext = extract_dbscan(ordering, 0.7)
        ref = dbscan(two_blobs, 0.7, 4)
        assert np.array_equal(ext.core_mask, ref.core_mask)

    def test_all_noise_case(self, uniform_cloud):
        ordering = optics(uniform_cloud, 0.3, 10)
        ext = extract_dbscan(ordering, 0.3)
        assert ext.n_clusters == 0

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord), min_size=0, max_size=50),
        st.floats(0.3, 3.0),
        st.integers(2, 6),
    )
    def test_extraction_core_structure_matches_dbscan(self, pts, eps, minpts):
        """ExtractDBSCAN guarantees the *core* structure exactly.

        Border points may be dropped to noise when the ordering visits
        them before the core point that would claim them (the known
        ExtractDBSCAN caveat, see the extract_dbscan docstring), so
        equivalence is asserted on core points: identical core sets and
        identical core co-clustering; non-core points are either noise
        in both or assigned in the extraction only where DBSCAN also
        assigns them.
        """
        arr = np.asarray(pts, dtype=np.float64).reshape(-1, 2)
        if arr.shape[0] == 0:
            return
        ordering = optics(arr, eps * 1.5, minpts)
        ext = extract_dbscan(ordering, eps)
        ref = dbscan(arr, eps, minpts)
        assert np.array_equal(ext.core_mask, ref.core_mask)
        cores = np.flatnonzero(ref.core_mask)
        # identical partition of core points (pairwise co-membership)
        for i in cores:
            same_ref = ref.labels[cores] == ref.labels[i]
            same_ext = ext.labels[cores] == ext.labels[i]
            assert np.array_equal(same_ref, same_ext)
        # extraction never clusters a point DBSCAN calls noise
        assert not np.any((ext.labels >= 0) & (ref.labels < 0))
