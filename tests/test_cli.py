"""Tests for the command-line interface (:mod:`repro.cli`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.io import load_dataset_file, load_result


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected_by_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "NOPE"])

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestGenerate:
    def test_generate_writes_npz(self, tmp_path, capsys):
        out = tmp_path / "ds.npz"
        rc = main(["generate", "cF_10k_5N", "--scale", "0.06", "-o", str(out)])
        assert rc == 0
        pts, truth, meta = load_dataset_file(out)
        assert pts.shape == (600, 2)
        assert truth is not None
        assert meta["name"] == "cF_10k_5N"
        assert "wrote 600 points" in capsys.readouterr().out


class TestCluster:
    def test_cluster_registry_dataset(self, tmp_path, capsys):
        save = tmp_path / "labels.npz"
        summary = tmp_path / "clusters.csv"
        rc = main(
            [
                "cluster",
                "cF_10k_5N",
                "--scale",
                "0.06",
                "--eps",
                "2.0",
                "--minpts",
                "4",
                "--save",
                str(save),
                "--summary",
                str(summary),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "clusters" in out
        res = load_result(save)
        assert res.n_points == 600
        assert summary.exists()

    def test_cluster_npz_file(self, tmp_path, capsys):
        out = tmp_path / "ds.npz"
        main(["generate", "cF_10k_5N", "--scale", "0.06", "-o", str(out)])
        rc = main(["cluster", str(out), "--eps", "2.0", "--minpts", "4"])
        assert rc == 0


class TestSweep:
    def test_sweep_prints_table(self, capsys):
        rc = main(
            [
                "sweep",
                "cF_10k_5N",
                "--scale",
                "0.06",
                "--eps",
                "2.0,3.0",
                "--minpts",
                "4,8",
                "--executor",
                "serial",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "(2,8)" in out or "(2,4)" in out

    def test_sweep_simulated_threads(self, capsys):
        rc = main(
            [
                "sweep",
                "cF_10k_5N",
                "--scale",
                "0.06",
                "--eps",
                "2.0,3.0",
                "--minpts",
                "4,8",
                "--executor",
                "simulated",
                "--threads",
                "4",
                "--scheduler",
                "SCHEDMINPTS",
                "--policy",
                "CLUSDEFAULT",
            ]
        )
        assert rc == 0
        assert "SCHEDMINPTS" in capsys.readouterr().out

    def test_cluster_cellgraph_index(self, capsys):
        rc = main(
            [
                "cluster",
                "cF_10k_5N",
                "--scale",
                "0.06",
                "--eps",
                "2.0",
                "--minpts",
                "4",
                "--index",
                "cellgraph",
            ]
        )
        assert rc == 0
        assert "index=cellgraph" in capsys.readouterr().out

    def test_cluster_rejects_unknown_index(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "cF_10k_5N", "--eps", "2.0", "--minpts", "4",
                 "--index", "octree"]
            )

    def test_sweep_cellgraph_kernel(self, capsys):
        rc = main(
            [
                "sweep",
                "cF_10k_5N",
                "--scale",
                "0.06",
                "--eps",
                "2.0,3.0",
                "--minpts",
                "4,8",
                "--kernel",
                "cellgraph",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "scratch" in out

    def test_sweep_rejects_unknown_kernel(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "cF_10k_5N", "--eps", "2.0", "--minpts", "4",
                 "--kernel", "quantum"]
            )

    def test_sweep_cellgraph_matches_bfs(self, tmp_path, capsys):
        args = [
            "sweep", "cF_10k_5N", "--scale", "0.06",
            "--eps", "2.0,3.0", "--minpts", "4,8",
        ]
        assert main(args) == 0
        bfs_out = capsys.readouterr().out
        assert main([*args, "--kernel", "cellgraph"]) == 0
        cg_out = capsys.readouterr().out
        # same variant table: cluster/noise counts agree line for line
        def pick(text):
            return [
                line.split()[:3]
                for line in text.splitlines()
                if line.startswith("(")
            ]

        assert pick(cg_out) == pick(bfs_out)


class TestFigure:
    def test_table1(self, capsys):
        assert main(["figure", "table1", "--scale", "0.001"]) == 0
        assert "SW1" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["figure", "fig5", "--scale", "0.001"]) == 0
        assert "CLUSDENSITY" in capsys.readouterr().out
