"""Session engine: point store, shared memory, index factory, sessions.

Covers the engine layer's contracts end to end:

* :class:`PointStore` — immutability, fingerprinting, shared-memory
  materialization and the close/unlink lifecycle (no ``/dev/shm``
  leaks, even when a process-pool worker raises mid-batch);
* :func:`pack_arrays` / :func:`attach_arrays` — the one-segment
  multi-array transport with identity dedup;
* :class:`IndexFactory` — memoization on (fingerprint, kind, params)
  across all four index kinds;
* :class:`Session` — the unified run entry point, executor/strategy
  resolution, and lifecycle;
* the balanced reuse-chain partitioner regression (skewed forests must
  not strand a near-idle worker).
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.core.scheduling import SchedMinpts
from repro.core.variants import Variant, VariantSet
from repro.engine import (
    IndexFactory,
    IndexPair,
    PointStore,
    RunContext,
    Session,
    attach_index_pair,
    fingerprint_points,
    share_index_pair,
)
from repro.engine.shm import attach_arrays, pack_arrays
from repro.exec import SerialExecutor, SimulatedExecutor
from repro.exec.cost import CostModel
from repro.exec.procpool import partition_reuse_chains


def _repro_segments() -> set[str]:
    return {p.rsplit("/", 1)[-1] for p in glob.glob("/dev/shm/repro_*")}


@pytest.fixture
def points(rng):
    return np.ascontiguousarray(
        np.vstack([rng.normal(0, 0.5, (120, 2)), rng.normal(6, 0.5, (120, 2))])
    )


VSET = VariantSet.from_product([0.4, 0.5], [4, 8])


# ----------------------------------------------------------------------
# PointStore
# ----------------------------------------------------------------------
class TestPointStore:
    def test_points_are_read_only(self, points):
        store = PointStore.from_points(points)
        with pytest.raises((ValueError, RuntimeError)):
            store.points[0, 0] = 99.0

    def test_fingerprint_matches_content(self, points):
        a = PointStore.from_points(points)
        b = PointStore.from_points(points.copy())
        assert a.fingerprint == b.fingerprint == fingerprint_points(a.points)

    def test_fingerprint_changes_with_content(self, points):
        mutated = points.copy()
        mutated[0, 0] += 1.0
        assert (
            PointStore.from_points(points).fingerprint
            != PointStore.from_points(mutated).fingerprint
        )

    def test_from_points_adopts_existing_store(self, points):
        store = PointStore.from_points(points)
        assert PointStore.from_points(store) is store

    def test_binsort_order_is_memoized(self, points):
        store = PointStore.from_points(points)
        assert store.binsort_order(1.0) is store.binsort_order(1.0)

    def test_ensure_shared_idempotent_and_closed_on_exit(self, points):
        before = _repro_segments()
        with PointStore.from_points(points) as store:
            h1 = store.ensure_shared()
            h2 = store.ensure_shared()
            assert h1 == h2
            assert store.is_shared and store.owns_segment
            assert h1.name in _repro_segments() - before
            np.testing.assert_array_equal(store.points, points)
        assert _repro_segments() == before

    def test_attach_roundtrip(self, points):
        with PointStore.from_points(points) as owner:
            handle = owner.ensure_shared()
            attached = PointStore.attach(handle)
            np.testing.assert_array_equal(attached.points, points)
            assert attached.fingerprint == owner.fingerprint
            assert not attached.owns_segment
            attached.close()  # close only; must not unlink
            assert handle.name in _repro_segments()
        assert handle.name not in _repro_segments()

    def test_close_is_idempotent(self, points):
        store = PointStore.from_points(points)
        store.ensure_shared()
        store.close()
        store.close()
        with pytest.raises(ValueError):
            store.ensure_shared()


# ----------------------------------------------------------------------
# shm array pack
# ----------------------------------------------------------------------
class TestArrayPack:
    def test_roundtrip_and_dedup(self):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        b = np.arange(5, dtype=np.int64)
        shm, handle = pack_arrays({"a": a, "b": b, "b_alias": b}, "test")
        try:
            # Aliased keys share one copy: one segment large enough for
            # a + b only (not 2x b), and offsets equal for the aliases.
            assert handle.entries["b"] == handle.entries["b_alias"]
            shm2, views = attach_arrays(handle)
            try:
                np.testing.assert_array_equal(views["a"], a)
                np.testing.assert_array_equal(views["b"], b)
                assert not views["a"].flags.writeable
            finally:
                del views
                shm2.close()
        finally:
            shm.close()
            shm.unlink()  # repro: allow[shm-lifecycle] (exercises the raw handle path)


# ----------------------------------------------------------------------
# IndexFactory
# ----------------------------------------------------------------------
class TestIndexFactory:
    @pytest.mark.parametrize(
        "kind,params",
        [
            ("rtree", {"r": 4}),
            ("grid", {"cell_width": 0.5}),
            ("kdtree", {"leaf_size": 8}),
            ("brute", {}),
        ],
    )
    def test_memoizes_each_kind(self, points, kind, params):
        factory = IndexFactory()
        store = PointStore.from_points(points)
        first = factory.get(store, kind, **params)
        assert factory.get(store, kind, **params) is first
        assert len(factory) == 1

    def test_same_content_different_store_hits(self, points):
        factory = IndexFactory()
        a = PointStore.from_points(points)
        b = PointStore.from_points(points.copy())
        assert factory.get(a, "rtree", r=4) is factory.get(b, "rtree", r=4)

    def test_mutated_points_miss(self, points):
        factory = IndexFactory()
        mutated = points.copy()
        mutated[0] += 1.0
        a = factory.get(PointStore.from_points(points), "rtree", r=4)
        b = factory.get(PointStore.from_points(mutated), "rtree", r=4)
        assert a is not b
        assert len(factory) == 2

    def test_different_params_miss(self, points):
        factory = IndexFactory()
        store = PointStore.from_points(points)
        assert factory.get(store, "rtree", r=1) is not factory.get(store, "rtree", r=4)

    def test_unknown_kind_raises(self, points):
        with pytest.raises(KeyError, match="unknown index kind"):
            IndexFactory().get(PointStore.from_points(points), "voronoi")

    def test_index_pair_reuses_cache_and_shares_order(self, points):
        factory = IndexFactory()
        store = PointStore.from_points(points)
        pair1 = factory.index_pair(store, 16)
        pair2 = factory.index_pair(store, 16)
        assert pair1.t_high is pair2.t_high and pair1.t_low is pair2.t_low
        # Both trees presort with the store's shared permutation.
        assert pair1.t_high.shareable_arrays["order"] is pair1.t_low.shareable_arrays["order"]

    def test_clear_forces_rebuild(self, points):
        factory = IndexFactory()
        store = PointStore.from_points(points)
        first = factory.get(store, "brute")
        factory.clear()
        assert factory.get(store, "brute") is not first


class TestSharedIndexPair:
    def test_attach_matches_built_queries(self, points):
        store = PointStore.from_points(points)
        pair = IndexFactory().index_pair(store, 16)
        shm, handle = share_index_pair(pair)
        try:
            shm2, attached = attach_index_pair(handle, store.points)
            try:
                for eps in (0.3, 0.8):
                    mbb = np.array([0.1 - eps, 0.2 - eps, 0.1 + eps, 0.2 + eps])
                    for tree, other in (
                        (pair.t_high, attached.t_high),
                        (pair.t_low, attached.t_low),
                    ):
                        got = other.query_candidates(mbb)
                        want = tree.query_candidates(mbb)
                        np.testing.assert_array_equal(np.sort(got), np.sort(want))
            finally:
                del attached
                shm2.close()
        finally:
            shm.close()
            shm.unlink()  # repro: allow[shm-lifecycle] (exercises the raw handle path)


# ----------------------------------------------------------------------
# RunContext
# ----------------------------------------------------------------------
class TestRunContext:
    def test_frozen_and_with(self, points):
        ex = SerialExecutor()
        store = PointStore.from_points(points)
        ctx = ex.make_context(store, IndexFactory().index_pair(store, 16))
        with pytest.raises(AttributeError):
            ctx.n_threads = 5
        assert ctx.with_(n_threads=5).n_threads == 5
        assert ctx.points is store.points


# ----------------------------------------------------------------------
# Session
# ----------------------------------------------------------------------
class TestSession:
    def test_run_matches_direct_serial(self, points):
        direct = SerialExecutor().run(points, VSET)
        with Session(points, dataset="unit") as session:
            batch = session.run(VSET)
        assert set(batch.results) == set(VSET)
        assert batch.record.dataset == "unit"
        assert batch.record.executor == "serial"
        for v in VSET:
            np.testing.assert_array_equal(batch[v].labels, direct[v].labels)

    def test_indexes_memoized_across_runs(self, points):
        with Session(points) as session:
            session.run(VSET)
            cached = len(session.factory)
            assert cached == 2  # T_high + T_low, built once
            session.run(VSET, executor="simulated", n_threads=4)
            assert len(session.factory) == cached

    def test_executor_resolution_forms(self, points):
        with Session(points) as session:
            assert session.run(VSET, executor="simulated").record.executor == "simulated"
            assert session.run(VSET, executor=SimulatedExecutor).record.executor == "simulated"
            inst = SimulatedExecutor(n_threads=3, scheduler=SchedMinpts())
            rec = session.run(VSET, executor=inst).record
            assert rec.executor == "simulated"
            assert rec.n_threads == 3  # instance knobs are the fallback
            assert rec.scheduler == "SCHEDMINPTS"

    def test_unknown_names_raise(self, points):
        with Session(points) as session:
            with pytest.raises(KeyError, match="unknown executor"):
                session.run(VSET, executor="gpu")
            with pytest.raises(KeyError, match="unknown scheduler"):
                session.run(VSET, scheduler="SCHEDRANDOM")
            with pytest.raises(KeyError, match="unknown reuse policy"):
                session.run(VSET, policy="CLUSWRONG")
            with pytest.raises(TypeError):
                session.run(VSET, executor=42)

    def test_session_defaults_apply(self, points):
        with Session(points, scheduler="SCHEDMINPTS", reuse_policy="CLUSSIZE") as s:
            rec = s.run(VSET).record
        assert rec.scheduler == "SCHEDMINPTS"
        assert rec.reuse_policy == "CLUSSIZE"

    def test_serial_clamps_threads(self, points):
        with Session(points) as session:
            rec = session.run(VSET, executor="serial", n_threads=8).record
        assert rec.n_threads == 1

    def test_closed_session_raises(self, points):
        from repro.util.errors import SessionClosedError

        session = Session(points)
        session.close()
        assert session.closed
        with pytest.raises(ValueError, match="closed"):
            session.run(VSET)
        with pytest.raises(SessionClosedError, match="already closed"):
            session.close()  # double close is a lifecycle bug now

    def test_procpool_run_cleans_segments(self, points):
        before = _repro_segments()
        with Session(points) as session:
            batch = session.run(VSET, executor="processes", n_threads=2)
            assert set(batch.results) == set(VSET)
        assert _repro_segments() == before

    def test_compat_run_cleans_transient_store(self, points):
        from repro.exec import ProcessPoolExecutorBackend

        before = _repro_segments()
        batch = ProcessPoolExecutorBackend(n_threads=2).run(points, VSET)
        assert set(batch.results) == set(VSET)
        assert _repro_segments() == before


class _ExplodingCostModel(CostModel):
    """Picklable cost model that fails inside the worker process."""

    def duration(self, counters, concurrency: int = 1) -> float:
        raise RuntimeError("exploding cost model")


class TestShmLifecycleOnFailure:
    def test_failed_procpool_run_leaks_nothing(self, points):
        before = _repro_segments()
        with Session(points, cost_model=_ExplodingCostModel()) as session:
            with pytest.raises(RuntimeError, match="exploding cost model"):
                session.run(VSET, executor="processes", n_threads=2)
        assert _repro_segments() == before

    def test_failed_compat_run_leaks_nothing(self, points):
        from repro.exec import ProcessPoolExecutorBackend

        before = _repro_segments()
        ex = ProcessPoolExecutorBackend(n_threads=2, cost_model=_ExplodingCostModel())
        with pytest.raises(RuntimeError, match="exploding cost model"):
            ex.run(points, VSET)
        assert _repro_segments() == before


# ----------------------------------------------------------------------
# balanced reuse-chain partitioning (regression)
# ----------------------------------------------------------------------
class TestPartitionBalance:
    def test_single_chain_splits_evenly(self):
        # 13 variants in one reuse chain (same minpts, stepped eps).
        chain = VariantSet(Variant(0.2 + 0.05 * i, 4) for i in range(13))
        groups = partition_reuse_chains(chain, 4)
        sizes = sorted(len(g) for g in groups)
        # Regression: the old target-size prefix walk produced
        # [1, 4, 4, 4], leaving one worker nearly idle.
        assert sizes == [3, 3, 3, 4]

    def test_skewed_forest_balances_with_singletons(self):
        # One 10-variant chain plus 3 unrelated singleton roots: the
        # singleton leftovers must be folded into the balance.
        chain = [Variant(0.2 + 0.05 * i, 4) for i in range(10)]
        singles = [Variant(50.0 + 10 * i, 64 + i) for i in range(3)]
        groups = partition_reuse_chains(VariantSet(chain + singles), 4)
        sizes = sorted(len(g) for g in groups)
        assert sum(sizes) == 13
        assert max(sizes) - min(sizes) <= 1

    def test_balance_never_worse_than_two_to_one(self):
        # Property over assorted forest shapes: with equal-cost
        # variants, no worker should get more than ~2x an even share.
        for n_eps, n_minpts, workers in [(5, 5, 4), (7, 2, 3), (3, 4, 8), (13, 1, 4)]:
            vset = VariantSet.from_product(
                [0.2 + 0.1 * i for i in range(n_eps)],
                [4 * (j + 1) for j in range(n_minpts)],
            )
            groups = partition_reuse_chains(vset, workers)
            even = len(vset) / max(1, min(workers, len(vset)))
            assert max(len(g) for g in groups) <= max(2, 2 * even)
