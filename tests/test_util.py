"""Unit tests for :mod:`repro.util` (validation, rng, timing, errors)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util import (
    ReproError,
    ReuseCriteriaError,
    SchedulingError,
    Stopwatch,
    ValidationError,
    as_points_array,
    check_eps,
    check_minpts,
    check_positive_int,
    resolve_rng,
    spawn_rngs,
)


class TestErrors:
    def test_validation_error_is_repro_error(self):
        assert issubclass(ValidationError, ReproError)

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)

    def test_reuse_and_scheduling_errors_are_repro_errors(self):
        assert issubclass(ReuseCriteriaError, ReproError)
        assert issubclass(SchedulingError, ReproError)


class TestAsPointsArray:
    def test_list_of_pairs(self):
        arr = as_points_array([[0, 1], [2, 3]])
        assert arr.shape == (2, 2)
        assert arr.dtype == np.float64
        assert arr.flags.c_contiguous

    def test_empty_input_yields_zero_by_two(self):
        arr = as_points_array([])
        assert arr.shape == (0, 2)

    def test_wrong_width_rejected(self):
        with pytest.raises(ValidationError):
            as_points_array([[1.0, 2.0, 3.0]])

    def test_one_dimensional_rejected(self):
        with pytest.raises(ValidationError):
            as_points_array([1.0, 2.0, 3.0])

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            as_points_array([[np.nan, 0.0]])

    def test_inf_rejected(self):
        with pytest.raises(ValidationError):
            as_points_array([[np.inf, 0.0]])

    def test_non_numeric_rejected(self):
        with pytest.raises(ValidationError):
            as_points_array([["a", "b"]])

    def test_existing_float64_array_not_copied(self):
        src = np.zeros((5, 2), dtype=np.float64)
        out = as_points_array(src)
        assert out is src

    def test_int_array_converted(self):
        out = as_points_array(np.array([[1, 2], [3, 4]]))
        assert out.dtype == np.float64


class TestScalarChecks:
    def test_check_eps_accepts_positive(self):
        assert check_eps(0.5) == 0.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf"), "x", None])
    def test_check_eps_rejects(self, bad):
        with pytest.raises(ValidationError):
            check_eps(bad)

    def test_check_minpts_accepts_one(self):
        assert check_minpts(1) == 1

    @pytest.mark.parametrize("bad", [0, -3, 2.5, "x", None, True])
    def test_check_minpts_rejects(self, bad):
        with pytest.raises(ValidationError):
            check_minpts(bad)

    def test_check_positive_int_accepts_integral_float(self):
        assert check_positive_int(4.0) == 4

    def test_check_positive_int_name_in_message(self):
        with pytest.raises(ValidationError, match="fanout"):
            check_positive_int(0, name="fanout")


class TestRng:
    def test_resolve_from_int_is_deterministic(self):
        a = resolve_rng(42).random(4)
        b = resolve_rng(42).random(4)
        assert np.array_equal(a, b)

    def test_resolve_passes_generator_through(self):
        g = resolve_rng(1)
        assert resolve_rng(g) is g

    def test_resolve_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_spawn_produces_independent_streams(self):
        a, b = spawn_rngs(7, 2)
        assert not np.array_equal(a.random(8), b.random(8))

    def test_spawn_is_deterministic(self):
        first = [g.random(3).tolist() for g in spawn_rngs(9, 3)]
        second = [g.random(3).tolist() for g in spawn_rngs(9, 3)]
        assert first == second

    def test_spawn_zero(self):
        assert spawn_rngs(1, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestStopwatch:
    def test_context_manager_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        with sw:
            pass
        assert sw.laps == 2
        assert sw.elapsed >= 0.0

    def test_stop_returns_lap_duration(self):
        sw = Stopwatch().start()
        lap = sw.stop()
        assert lap >= 0.0
        assert sw.elapsed == pytest.approx(lap)

    def test_double_start_rejected(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0
        assert sw.laps == 0
