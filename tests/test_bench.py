"""Tests for the benchmark harness: scenario definitions match the
paper's tables, the figure drivers run end-to-end at tiny scale, and
the paper's qualitative shapes hold."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.figures import (
    fig4_indexing,
    fig5_per_variant,
    fig6_scatter,
    fig7_summary,
    fig8_combined,
    fig9_makespan,
    table1_rows,
)
from repro.bench.reference import reference_run
from repro.bench.reporting import format_table, format_value, fraction_bar
from repro.bench.scenarios import (
    S1_CONFIGS,
    S2_CONFIG,
    S3_CONFIGS,
    s3_variant_set,
)
from repro.core.reuse import CLUS_DENSITY
from repro.core.variants import VariantSet
from repro.data.registry import load_dataset

TINY = 0.002  # tiny scale so harness tests stay fast


class TestScenarioDefinitions:
    def test_s1_matches_table2(self):
        cfg = {c.dataset: c.eps for c in S1_CONFIGS}
        assert cfg == {
            "cF_1M_5N": 0.5,
            "cF_100k_5N": 4.0,
            "cF_10k_5N": 10.0,
            "cV_1M_30N": 0.5,
            "cV_100k_30N": 2.0,
            "cV_10k_30N": 10.0,
            "SW1": 0.5,
        }
        assert all(c.minpts == 4 and c.n_copies == 16 for c in S1_CONFIGS)

    def test_s2_matches_table3(self):
        assert S2_CONFIG.eps_values == (0.2, 0.4, 0.6)
        assert S2_CONFIG.minpts_values == tuple(range(4, 33, 4))
        assert len(S2_CONFIG.datasets) == 7
        ds = load_dataset("cF_10k_5N", TINY)
        assert len(S2_CONFIG.variant_set(ds)) == 24

    def test_s3_matches_table4(self):
        cells = {(c.dataset, c.variant_set_name) for c in S3_CONFIGS}
        assert cells == {
            ("SW1", "V1"),
            ("SW1", "V3"),
            ("SW2", "V1"),
            ("SW2", "V3"),
            ("SW3", "V1"),
            ("SW3", "V3"),
            ("SW4", "V2"),
            ("SW4", "V3"),
        }
        ds = load_dataset("SW1", TINY)
        for name in ("V1", "V2", "V3"):
            assert len(s3_variant_set(ds, name)) == 57

    def test_s3_v3_eps_grid(self):
        ds = load_dataset("SW1", TINY)
        vs = s3_variant_set(ds, "V3")
        assert vs.minpts_values == (4, 8, 16)
        assert len(vs.eps_values) == 19
        assert vs.eps_values[0] == pytest.approx(0.04)
        assert vs.eps_values[-1] == pytest.approx(0.40)


class TestReference:
    def test_reference_runs_all_variants(self):
        ds = load_dataset("cF_10k_5N", TINY)
        vs = VariantSet.from_product([5.0, 8.0], [4, 8])
        ref = reference_run(ds.points, vs)
        assert set(ref.results) == set(vs)
        assert ref.total_units > 0
        assert ref.total_wall > 0


class TestReporting:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.0) == "0"
        assert format_value(3.14159) == "3.142"
        assert format_value(12345.0) == "12,345"
        assert format_value("x") == "x"

    def test_format_table_aligns(self):
        out = format_table(["name", "v"], [["a", 1], ["bb", 2]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5  # title, header, rule, 2 rows

    def test_fraction_bar(self):
        assert fraction_bar(0.5, width=10) == "#####....."
        assert fraction_bar(-1.0, width=4) == "...."
        assert fraction_bar(2.0, width=4) == "####"


class TestFigureDrivers:
    """End-to-end smoke + shape checks at tiny scale."""

    def test_table1(self):
        rows = table1_rows(TINY)
        assert len(rows) == 16
        assert all(r["|D| (loaded)"] >= 500 for r in rows)

    def test_fig4_shapes(self):
        rows = fig4_indexing(
            TINY, configs=S1_CONFIGS[:2], r_sweep=(1, 30, 70), n_threads=16
        )
        for r in rows:
            # the paper's headline: indexed beats unindexed concurrency
            assert r["best_r"] > 1
            assert r["best_speedup"] > r["speedup_r1"]
            # memory-bound ceiling for r = 1
            assert r["speedup_r1"] < 5.0

    def test_fig5_record(self):
        rec = fig5_per_variant(CLUS_DENSITY, TINY, dataset="SW1")
        assert rec.n_variants == 24
        assert rec.n_from_scratch == 1
        assert rec.scheduler == "SCHEDGREEDY"
        fractions = [r.reuse_fraction for r in rec.records]
        assert max(fractions) > 0.3

    def test_fig6_rows(self):
        rows = fig6_scatter(TINY, dataset="SW1", policies=(CLUS_DENSITY,))
        assert len(rows) == 24
        assert {r["scheme"] for r in rows} == {"CLUSDENSITY"}

    def test_fig7_shapes(self):
        rows = fig7_summary(TINY, datasets=("cF_1M_5N", "SW1"), policies=(CLUS_DENSITY,))
        assert len(rows) == 2
        for r in rows:
            assert r["speedup"] > 1.0  # reuse must beat the reference
            assert r["avg_quality"] >= 0.99  # paper: >= 0.998
            assert 0.0 < r["avg_reuse_fraction"] <= 1.0

    def test_fig8_shapes(self):
        rows = fig8_combined(
            TINY, configs=S3_CONFIGS[:1], n_threads=8, policies=(CLUS_DENSITY,)
        )
        assert len(rows) == 2  # two schedulers
        for r in rows:
            assert r["speedup"] > 1.0
            assert r["n_from_scratch"] >= 1

    def test_fig9_records(self):
        out = fig9_makespan(TINY, n_threads=8)
        assert set(out) == {"SCHEDGREEDY", "SCHEDMINPTS"}
        for rec in out.values():
            assert rec.makespan >= rec.lower_bound_makespan - 1e-9
            assert rec.slowdown_vs_lower_bound >= -1e-9
        # SCHEDMINPTS forces one scratch run per distinct eps (19 for V3)
        assert out["SCHEDMINPTS"].n_from_scratch >= out["SCHEDGREEDY"].n_from_scratch


class TestBenchSnapshot:
    """The repro-bench-snapshot/v1 writer/validator pair."""

    def _rows(self):
        return [
            {"kind": "cellgraph", "wall_s": 0.5, "counters": {"neighbor_searches": 3}},
            {"kind": "rtree r=70", "wall_s": 2.0, "counters": {}},
        ]

    def test_roundtrip(self, tmp_path):
        from repro.bench.snapshot import SCHEMA, make_snapshot, read_snapshot, write_snapshot

        snap = make_snapshot(
            "index",
            workload={"dataset": "SW1", "eps": 0.5, "minpts": 4},
            n=1000,
            rows=self._rows(),
            rev="deadbee",
        )
        path = write_snapshot(tmp_path / "BENCH_index.json", snap)
        loaded = read_snapshot(path)
        assert loaded == snap
        assert loaded["schema"] == SCHEMA
        assert loaded["git_rev"] == "deadbee"

    def test_git_rev_stamped_from_repo(self):
        from repro.bench.snapshot import git_rev, make_snapshot

        snap = make_snapshot(
            "batch", workload={}, n=1, rows=self._rows()
        )
        assert snap["git_rev"] == git_rev()
        assert snap["git_rev"]  # non-empty even outside a repo ("unknown")

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda s: s.pop("rows"),
            lambda s: s.update(schema="repro-bench-snapshot/v0"),
            lambda s: s.update(n=-1),
            lambda s: s.update(n="1000"),
            lambda s: s.update(rows=[]),
            lambda s: s.update(rows=[{"kind": "x"}]),
            lambda s: s["rows"].append({"kind": "", "wall_s": 1.0, "counters": {}}),
            lambda s: s["rows"].append({"kind": "x", "wall_s": -1.0, "counters": {}}),
            lambda s: s["rows"].append(
                {"kind": "x", "wall_s": 1.0, "counters": {"a": 1.5}}
            ),
            lambda s: s.update(git_rev=""),
        ],
    )
    def test_schema_drift_fails(self, mutate):
        from repro.bench.snapshot import (
            SnapshotSchemaError,
            make_snapshot,
            validate_snapshot,
        )

        snap = make_snapshot(
            "index", workload={}, n=10, rows=self._rows(), rev="abc"
        )
        mutate(snap)
        with pytest.raises(SnapshotSchemaError):
            validate_snapshot(snap)

    def test_write_refuses_invalid(self, tmp_path):
        from repro.bench.snapshot import SnapshotSchemaError, write_snapshot

        with pytest.raises(SnapshotSchemaError):
            write_snapshot(tmp_path / "bad.json", {"schema": "nope"})
        assert not (tmp_path / "bad.json").exists()

    def test_committed_snapshots_validate(self):
        # The repo-root artifacts committed by the ablation benches must
        # stay schema-clean — this is the drift gate CI relies on.
        from pathlib import Path

        from repro.bench.snapshot import read_snapshot

        root = Path(__file__).resolve().parent.parent
        for name, bench in [
            ("BENCH_index.json", "index"),
            ("BENCH_batch.json", "batch"),
            ("BENCH_shard.json", "shard"),
            ("BENCH_hybrid.json", "hybrid"),
        ]:
            path = root / name
            if not path.exists():
                pytest.skip(f"{name} not generated yet")
            snap = read_snapshot(path)
            assert snap["bench"] == bench
            kinds = [r["kind"] for r in snap["rows"]]
            if bench == "index":
                assert "cellgraph" in kinds
            if bench == "shard":
                assert any(k.startswith("serial ") for k in kinds)
                assert any("R=8" in k for k in kinds)
            if bench == "hybrid":
                assert set(kinds) == {
                    "serial", "variant-only", "shard-only", "hybrid"
                }
                speedup = snap["workload"]["modeled_speedup"]
                assert speedup["hybrid"] >= max(
                    speedup["variant-only"], speedup["shard-only"]
                )
