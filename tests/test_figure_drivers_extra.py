"""Additional harness tests: Figures 1-3 drivers and the Figure 3
published-schedule checks (beyond what the benches assert)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.figures import (
    fig1_tec_map,
    fig2_boundary_discovery,
    fig3_dependency_example,
)


class TestFig1:
    def test_renders_both_panels(self):
        text = fig1_tec_map(0.001, width=40, height=8)
        assert "TEC field" in text
        assert "measurement points" in text
        # two character panels of the requested width exist
        lines = [l for l in text.splitlines() if len(l) == 40]
        assert len(lines) >= 14


class TestFig2:
    def test_stage_counts_consistent(self):
        info = fig2_boundary_discovery()
        assert info["cluster_size"] > 0
        assert info["sweep_candidates"] >= info["cluster_size"]
        assert (
            info["outside_points"]
            == info["sweep_candidates"] - info["cluster_size"]
        )
        assert info["points_reused"] >= info["cluster_size"]
        # boundary discovery searched at least the sweep's outside pts
        assert info["outside_searched"] >= info["outside_points"]

    def test_result_is_valid_clustering(self):
        info = fig2_boundary_discovery()
        res = info["result"]
        assert res.n_points == len(info["points"])
        assert res.n_clusters >= 1

    def test_deterministic(self):
        a = fig2_boundary_discovery(seed=5)
        b = fig2_boundary_discovery(seed=5)
        assert a["points_reused"] == b["points_reused"]
        assert a["sweep_candidates"] == b["sweep_candidates"]


class TestFig3:
    def test_published_s2_schedule(self):
        info = fig3_dependency_example()
        assert info["schedule_s2"] == [
            "(0.2,32)", "(0.4,32)", "(0.6,32)",
            "(0.2,28)", "(0.2,24)", "(0.2,20)",
            "(0.4,28)", "(0.4,24)", "(0.4,20)",
            "(0.6,28)", "(0.6,24)", "(0.6,20)",
        ]

    def test_tree_shape(self):
        info = fig3_dependency_example()
        children = {}
        for p, c in info["edges"]:
            children.setdefault(p, []).append(c)
        # Figure 3(a): (0.2,32) is the root with two children
        assert sorted(children["(0.2,32)"]) == ["(0.2,28)", "(0.4,32)"]
        # every variant except the root appears as exactly one child
        all_children = [c for _, c in info["edges"]]
        assert len(all_children) == len(set(all_children)) == 11

    def test_s1_is_depth_first_from_root(self):
        info = fig3_dependency_example()
        s1 = info["schedule_s1"]
        assert s1[0] == "(0.2,32)"
        assert len(s1) == 12
        parent = {c: p for p, c in info["edges"]}
        pos = {v: i for i, v in enumerate(s1)}
        for child, par in parent.items():
            assert pos[par] < pos[child]
