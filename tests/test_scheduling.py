"""Tests for variant scheduling (Section IV-D), including the paper's
Figure 3 worked example, which we reproduce exactly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dbscan import dbscan
from repro.core.result import ClusteringResult
from repro.core.scheduling import (
    CompletedRegistry,
    PlannedVariant,
    SchedGreedy,
    SchedMinpts,
    SCHEDULERS,
    dependency_tree,
    depth_first_schedule,
)
from repro.core.variants import Variant, VariantSet
from repro.util.errors import SchedulingError

#: The paper's Figure 3 variant set: A = {0.2, 0.4, 0.6}, B = {20, 24, 28, 32}.
FIG3 = VariantSet.from_product([0.2, 0.4, 0.6], [20, 24, 28, 32])


def dummy_result(n=4) -> ClusteringResult:
    return ClusteringResult(np.zeros(n, dtype=np.int64), np.ones(n, dtype=bool))


class TestCompletedRegistry:
    def test_add_and_get(self):
        reg = CompletedRegistry()
        v = Variant(0.2, 4)
        r = dummy_result()
        reg.add(v, r)
        assert reg.get(v) is r
        assert v in reg
        assert len(reg) == 1

    def test_get_missing_raises(self):
        with pytest.raises(SchedulingError):
            CompletedRegistry().get(Variant(0.2, 4))

    def test_completed_before_inclusive(self):
        reg = CompletedRegistry()
        reg.add(Variant(0.2, 4), dummy_result(), finished_at=5.0)
        assert reg.completed_variants(before=5.0) == [Variant(0.2, 4)]
        assert reg.completed_variants(before=4.9) == []

    def test_best_source_prefers_min_distance(self):
        reg = CompletedRegistry()
        reg.add(Variant(0.2, 32), dummy_result())
        reg.add(Variant(0.6, 24), dummy_result())
        got = reg.best_source(Variant(0.6, 20), FIG3)
        assert got is not None
        assert got[0] == Variant(0.6, 24)  # Figure 3 discussion: not (0.2, 32)

    def test_best_source_respects_inclusion(self):
        reg = CompletedRegistry()
        reg.add(Variant(0.6, 20), dummy_result())
        assert reg.best_source(Variant(0.2, 32), FIG3) is None

    def test_best_source_respects_time(self):
        reg = CompletedRegistry()
        reg.add(Variant(0.2, 32), dummy_result(), finished_at=10.0)
        assert reg.best_source(Variant(0.4, 32), FIG3, before=5.0) is None
        assert reg.best_source(Variant(0.4, 32), FIG3, before=10.0) is not None

    def test_best_source_empty_registry(self):
        assert CompletedRegistry().best_source(Variant(0.6, 20), FIG3) is None


class TestSchedGreedy:
    def test_plan_is_canonical_order(self):
        plan = SchedGreedy().plan(FIG3)
        assert [p.variant.as_tuple() for p in plan[:4]] == [
            (0.2, 32),
            (0.2, 28),
            (0.2, 24),
            (0.2, 20),
        ]
        assert not any(p.force_scratch for p in plan)

    def test_plan_covers_all_variants_once(self):
        plan = SchedGreedy().plan(FIG3)
        assert sorted(p.variant.as_tuple() for p in plan) == sorted(
            v.as_tuple() for v in FIG3
        )


class TestSchedMinpts:
    def test_head_list_is_max_minpts_per_eps(self):
        plan = SchedMinpts().plan(FIG3)
        heads = [p for p in plan if p.force_scratch]
        assert [p.variant.as_tuple() for p in heads] == [
            (0.2, 32),
            (0.4, 32),
            (0.6, 32),
        ]

    def test_figure3c_schedule(self):
        """Figure 3(c): S2 = ((0.2,32),(0.4,32),(0.6,32),(0.2,28),...)."""
        plan = SchedMinpts().plan(FIG3)
        expected = [
            (0.2, 32),
            (0.4, 32),
            (0.6, 32),
            (0.2, 28),
            (0.2, 24),
            (0.2, 20),
            (0.4, 28),
            (0.4, 24),
            (0.4, 20),
            (0.6, 28),
            (0.6, 24),
            (0.6, 20),
        ]
        assert [p.variant.as_tuple() for p in plan] == expected

    def test_forced_scratch_never_selects_source(self):
        reg = CompletedRegistry()
        reg.add(Variant(0.2, 32), dummy_result())
        sched = SchedMinpts()
        planned = PlannedVariant(Variant(0.4, 32), force_scratch=True)
        assert sched.select_source(planned, FIG3, reg) is None

    def test_non_head_uses_greedy_selection(self):
        reg = CompletedRegistry()
        reg.add(Variant(0.2, 32), dummy_result())
        sched = SchedMinpts()
        planned = PlannedVariant(Variant(0.2, 28))
        got = sched.select_source(planned, FIG3, reg)
        assert got is not None and got[0] == Variant(0.2, 32)


class TestDependencyTree:
    def test_single_root(self):
        tree = dependency_tree(FIG3)
        roots = [v for v, d in tree.nodes(data=True) if d.get("root")]
        assert roots == [Variant(0.2, 32)]

    def test_figure3a_edges(self):
        """Spot-check the minimal-difference parents of Figure 3(a)."""
        tree = dependency_tree(FIG3)
        parent = {c: p for p, c in tree.edges()}
        assert parent[Variant(0.2, 28)] == Variant(0.2, 32)
        assert parent[Variant(0.4, 32)] == Variant(0.2, 32)
        assert parent[Variant(0.6, 32)] == Variant(0.4, 32)
        assert parent[Variant(0.6, 20)] == Variant(0.6, 24)

    def test_every_nonroot_has_reusable_parent(self):
        tree = dependency_tree(FIG3)
        for p, c in tree.edges():
            assert c.can_reuse(p)

    def test_forest_covers_all(self):
        tree = dependency_tree(FIG3)
        assert tree.number_of_nodes() == len(FIG3)

    def test_depth_first_schedule_is_valid_topologically(self):
        tree = dependency_tree(FIG3)
        order = depth_first_schedule(tree)
        pos = {v: i for i, v in enumerate(order)}
        for p, c in tree.edges():
            assert pos[p] < pos[c]

    def test_depth_first_schedule_starts_at_root(self):
        order = depth_first_schedule(dependency_tree(FIG3))
        assert order[0] == Variant(0.2, 32)
        assert len(order) == len(FIG3)

    def test_disconnected_sets_have_multiple_roots(self):
        vs = VariantSet.from_pairs([(0.1, 4), (0.2, 8)])  # mutually non-reusable
        tree = dependency_tree(vs)
        roots = [v for v, d in tree.nodes(data=True) if d.get("root")]
        assert len(roots) == 2


class TestRegistryLookups:
    def test_schedulers_registry(self):
        assert set(SCHEDULERS) == {"SCHEDGREEDY", "SCHEDMINPTS"}
