"""End-to-end integration tests: data generation -> indexing ->
variant-batch execution -> quality measurement, across executors and
scales.

These are the "does the whole pipeline hold together" checks, including
the scale-stability property DESIGN.md promises: relative effects
(reuse beats reference; r = 1 concurrency ceiling) hold at two
different dataset scales.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reference import reference_run
from repro.core.reuse import CLUS_DENSITY
from repro.core.variants import VariantSet
from repro.data.registry import load_dataset
from repro.exec import (
    ProcessPoolExecutorBackend,
    SerialExecutor,
    SimulatedExecutor,
    ThreadPoolExecutorBackend,
)
from repro.exec.base import IndexPair
from repro.metrics.quality import quality_score
from repro.util.rng import resolve_rng

VSET = VariantSet.from_product([0.3, 0.5], [4, 8])


@pytest.fixture(scope="module")
def sw_tiny():
    return load_dataset("SW1", 0.002)


class TestPipeline:
    def test_sw_pipeline_quality_across_executors(self, sw_tiny):
        pts = sw_tiny.points
        indexes = IndexPair.build(pts, 70)
        ref = reference_run(pts, VSET, index=indexes.t_high)
        for executor in (
            SerialExecutor(),
            SimulatedExecutor(n_threads=4),
            ThreadPoolExecutorBackend(n_threads=2),
        ):
            batch = executor.run(pts, VSET, indexes=indexes)
            for v in VSET:
                assert quality_score(ref.results[v], batch.results[v]) >= 0.99, (
                    f"{executor.name} diverged on {v}"
                )

    def test_process_pool_pipeline(self, sw_tiny):
        pts = sw_tiny.points
        ref = reference_run(pts, VSET)
        batch = ProcessPoolExecutorBackend(n_threads=2).run(pts, VSET)
        for v in VSET:
            assert quality_score(ref.results[v], batch.results[v]) >= 0.99

    def test_synthetic_truth_recovery_through_batch(self):
        ds = load_dataset("cF_10k_5N", 0.1)  # 1000 points, known truth
        batch = SerialExecutor().run(ds.points, VariantSet.from_product([0.8], [4]))
        res = next(iter(batch.results.values()))
        truth = ds.truth
        clustered = (truth >= 0) & (res.labels >= 0)
        # most co-members in truth stay co-members in the clustering
        agree = 0
        total = 0
        rng = resolve_rng(0)
        idx = rng.choice(np.flatnonzero(clustered), size=min(200, clustered.sum()), replace=False)
        for i in idx:
            same_truth = truth == truth[i]
            same_found = res.labels == res.labels[i]
            total += 1
            agree += (same_truth & same_found).sum() >= 0.5 * same_truth.sum()
        assert agree / total > 0.8


class TestScaleStability:
    """Relative effects must not depend on the chosen dataset scale."""

    @pytest.mark.parametrize("scale", [0.001, 0.003])
    def test_reuse_beats_reference_at_any_scale(self, scale):
        ds = load_dataset("SW1", scale)
        vs = VariantSet.from_product([0.3, 0.5], [4, 8, 12])
        ref = reference_run(ds.points, vs)
        batch = SerialExecutor(reuse_policy=CLUS_DENSITY).run(ds.points, vs)
        assert ref.total_units / batch.record.makespan > 1.0

    @pytest.mark.parametrize("scale", [0.001, 0.003])
    def test_unindexed_concurrency_ceiling_at_any_scale(self, scale):
        from repro.bench.figures import fig4_indexing
        from repro.bench.scenarios import S1_CONFIGS

        rows = fig4_indexing(scale, configs=S1_CONFIGS[:1], r_sweep=(1, 70))
        (row,) = rows
        assert row["speedup_r1"] < 5.0
        assert row["speedup_by_r"][70] > 2 * row["speedup_r1"]
