"""Tests for the streaming subsystem: VariantMonitor and ClusterTracker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dbscan import dbscan
from repro.core.variants import Variant, VariantSet
from repro.metrics.quality import quality_score
from repro.stream import ClusterTracker, VariantMonitor
from repro.util.errors import ValidationError
from repro.util.rng import resolve_rng

VSET = VariantSet.from_product([0.8, 1.2], [4, 8])


def blob(center, n, seed, sigma=0.3):
    return resolve_rng(seed).normal(center, sigma, (n, 2))


class TestVariantMonitor:
    def test_observe_updates_all_variants(self):
        mon = VariantMonitor(VSET)
        summary = mon.observe(blob([0, 0], 60, 1))
        assert set(summary.per_variant) == set(VSET)
        assert summary.epoch == 0
        assert summary.n_points == 60

    def test_snapshots_match_scratch_after_epochs(self):
        mon = VariantMonitor(VSET)
        batches = [blob([0, 0], 50, 2), blob([6, 6], 50, 3), blob([0, 0], 30, 4)]
        for b in batches:
            mon.observe(b)
        all_points = mon.points()
        for v in VSET:
            ref = dbscan(all_points, v.eps, v.minpts)
            assert quality_score(ref, mon.snapshot(v)) >= 0.99

    def test_dominant_share_grows_with_concentration(self):
        mon = VariantMonitor(VSET)
        s1 = mon.observe(resolve_rng(5).uniform(0, 30, (100, 2)))
        s2 = mon.observe(blob([15, 15], 300, 6))
        assert s2.dominant_share > s1.dominant_share

    def test_baseline_then_observe(self):
        mon = VariantMonitor(VSET)
        backlog = np.vstack([blob([0, 0], 80, 7), blob([8, 8], 80, 8)])
        s0 = mon.baseline(backlog)
        assert s0.n_points == 160
        assert s0.median_clusters >= 1
        s1 = mon.observe(blob([0, 0], 20, 9))
        assert s1.n_points == 180
        for v in VSET:
            ref = dbscan(mon.points(), v.eps, v.minpts)
            assert quality_score(ref, mon.snapshot(v)) >= 0.99

    def test_baseline_after_observe_rejected(self):
        mon = VariantMonitor(VSET)
        mon.observe(blob([0, 0], 20, 1))
        with pytest.raises(ValidationError):
            mon.baseline(blob([0, 0], 20, 2))

    def test_unknown_variant_snapshot_rejected(self):
        mon = VariantMonitor(VSET)
        mon.observe(blob([0, 0], 20, 1))
        with pytest.raises(ValidationError):
            mon.snapshot(Variant(9.9, 99))


class TestClusterTracker:
    def _cluster(self, pts):
        return dbscan(pts, 0.8, 4)

    def test_stationary_cluster_forms_one_track(self):
        tracker = ClusterTracker(gate=2.0, min_size=5)
        for epoch in range(4):
            pts = blob([0, 0], 60, 10 + epoch)
            tracker.update(pts, self._cluster(pts))
        tracks = tracker.tracks(min_length=4)
        assert len(tracks) == 1
        assert tracks[0].speed() == pytest.approx(0.0, abs=0.3)

    def test_moving_cluster_velocity(self):
        tracker = ClusterTracker(gate=3.0, min_size=5, overlap_eps=1.0)
        for epoch in range(5):
            pts = blob([2.0 * epoch, 0.0], 80, 20 + epoch)
            tracker.update(pts, self._cluster(pts))
        (track,) = tracker.tracks(min_length=5)
        v = track.velocity()
        assert v is not None
        assert v[0] == pytest.approx(2.0, abs=0.3)
        assert abs(v[1]) < 0.3

    def test_two_separate_features_two_tracks(self):
        tracker = ClusterTracker(gate=2.0, min_size=5)
        for epoch in range(3):
            pts = np.vstack([blob([0, 0], 50, epoch), blob([20, 20], 50, 40 + epoch)])
            tracker.update(pts, self._cluster(pts))
        assert len(tracker.tracks(min_length=3)) == 2

    def test_disappearing_feature_closes_after_misses(self):
        tracker = ClusterTracker(gate=2.0, min_size=5, max_misses=1)
        pts = blob([0, 0], 60, 50)
        tracker.update(pts, self._cluster(pts))
        empty = resolve_rng(0).uniform(40, 60, (30, 2))
        tracker.update(empty, self._cluster(empty))  # miss 1 (coast)
        assert len(tracker.closed) == 0
        tracker.update(empty, self._cluster(empty))  # miss 2 -> closed
        assert any(t.length == 1 for t in tracker.closed)

    def test_new_feature_opens_track(self):
        tracker = ClusterTracker(gate=2.0, min_size=5)
        pts1 = blob([0, 0], 60, 60)
        up1 = tracker.update(pts1, self._cluster(pts1))
        assert len(up1.opened) == 1
        pts2 = np.vstack([blob([0, 0], 60, 61), blob([15, 0], 60, 62)])
        up2 = tracker.update(pts2, self._cluster(pts2))
        assert len(up2.opened) == 1
        assert len(up2.matched) == 1

    def test_min_size_filters_specks(self):
        tracker = ClusterTracker(gate=2.0, min_size=50)
        pts = blob([0, 0], 20, 70)
        up = tracker.update(pts, self._cluster(pts))
        assert up.opened == []

    def test_gate_blocks_teleporting_match(self):
        tracker = ClusterTracker(gate=1.0, min_size=5)
        pts1 = blob([0, 0], 60, 80)
        tracker.update(pts1, self._cluster(pts1))
        pts2 = blob([30, 30], 60, 81)
        up = tracker.update(pts2, self._cluster(pts2))
        assert len(up.matched) == 0
        assert len(up.opened) == 1

    def test_invalid_gate(self):
        with pytest.raises(ValidationError):
            ClusterTracker(gate=0.0)

    def test_single_observation_velocity_none(self):
        tracker = ClusterTracker(gate=2.0, min_size=5)
        pts = blob([0, 0], 60, 90)
        tracker.update(pts, self._cluster(pts))
        (track,) = tracker.tracks()
        assert track.velocity() is None
        assert track.speed() is None
