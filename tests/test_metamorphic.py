"""Metamorphic properties of the inclusion criteria (Section IV-B).

For a variant pair where ``relaxed.eps >= strict.eps`` and
``relaxed.minpts <= strict.minpts``, relaxing the density requirement
can only *grow* clusters, never split them.  The order-independent
consequences DBSCAN guarantees (and these tests assert, via
hypothesis-generated parameter pairs):

* **core monotonicity** — every core point of the strict run is core
  in the relaxed run;
* **cluster containment on cores** — the core points of one strict
  cluster all land in a single relaxed cluster (they are density-
  connected under the strict parameters, hence under the relaxed);
* **clustered monotonicity** — every point clustered by the strict
  run is clustered by the relaxed run (equivalently, relaxed noise is
  a subset of strict noise).

Full *border-point* containment is deliberately not asserted: a border
point reachable from two clusters is assigned order-dependently by
DBSCAN itself, so it is not a metamorphic invariant.

Each property is checked both with reuse **disabled** (two independent
plain-DBSCAN runs) and **enabled** (the relaxed run seeded from the
strict run through VariantDBSCAN), across all four spatial index
types.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dbscan import dbscan
from repro.core.result import ClusteringResult
from repro.core.variant_dbscan import variant_dbscan
from repro.core.variants import Variant
from repro.index.brute import BruteForceIndex
from repro.index.grid import UniformGridIndex
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree
from repro.util.rng import resolve_rng

INDEX_BUILDERS = {
    "brute": lambda pts, eps: BruteForceIndex(pts),
    "grid": lambda pts, eps: UniformGridIndex(pts, cell_width=max(eps, 0.1)),
    "kdtree": lambda pts, eps: KDTree(pts, leaf_size=8),
    "rtree": lambda pts, eps: RTree(pts, r=16),
}

# Parameter pairs satisfying the inclusion criteria:
# relaxed.eps >= strict.eps and relaxed.minpts <= strict.minpts.
variant_pairs = st.tuples(
    st.sampled_from([0.35, 0.5, 0.65]),      # strict eps
    st.sampled_from([0.0, 0.15, 0.3]),       # eps relaxation
    st.sampled_from([3, 5, 8]),              # relaxed minpts
    st.sampled_from([0, 2, 4]),              # minpts tightening
).map(
    lambda t: (
        Variant(t[0] + t[1], t[2]),          # relaxed
        Variant(t[0], t[2] + t[3]),          # strict
    )
)

datasets = st.sampled_from([3, 11, 29])


def _points(seed: int) -> np.ndarray:
    g = resolve_rng(seed)
    return np.vstack(
        [
            g.normal(0.0, 0.45, (70, 2)),
            g.normal(4.0, 0.45, (70, 2)),
            g.uniform(-2.0, 6.0, (30, 2)),
        ]
    )


def assert_metamorphic(
    strict: ClusteringResult, relaxed: ClusteringResult, context: str
) -> None:
    """Assert the three order-independent inclusion-criteria properties."""
    s, r = strict.labels, relaxed.labels

    # Core monotonicity.
    lost_core = strict.core_mask & ~relaxed.core_mask
    assert not lost_core.any(), (
        f"{context}: {int(lost_core.sum())} strict core points lost core "
        f"status in the relaxed run (points {np.flatnonzero(lost_core)[:10]})"
    )

    # Clustered monotonicity (noise can only shrink when relaxing).
    demoted = (s >= 0) & (r < 0)
    assert not demoted.any(), (
        f"{context}: {int(demoted.sum())} points clustered under the strict "
        f"params became noise under the relaxed "
        f"(points {np.flatnonzero(demoted)[:10]})"
    )

    # Each strict cluster's cores land in exactly one relaxed cluster.
    for cid in range(strict.n_clusters):
        cores = np.flatnonzero((s == cid) & strict.core_mask)
        targets = np.unique(r[cores])
        assert targets.size <= 1, (
            f"{context}: strict cluster {cid} has core points scattered over "
            f"relaxed clusters {targets.tolist()}"
        )


@pytest.mark.parametrize("index_kind", sorted(INDEX_BUILDERS))
class TestInclusionMetamorphic:
    @settings(max_examples=15, deadline=None)
    @given(pair=variant_pairs, seed=datasets)
    def test_reuse_disabled(self, index_kind, pair, seed):
        relaxed_v, strict_v = pair
        points = _points(seed)
        build = INDEX_BUILDERS[index_kind]
        strict = dbscan(
            points, strict_v.eps, strict_v.minpts,
            index=build(points, strict_v.eps),
        )
        relaxed = dbscan(
            points, relaxed_v.eps, relaxed_v.minpts,
            index=build(points, relaxed_v.eps),
        )
        assert_metamorphic(
            strict, relaxed,
            f"[{index_kind}] scratch {strict_v} -> {relaxed_v} (seed {seed})",
        )

    @settings(max_examples=15, deadline=None)
    @given(pair=variant_pairs, seed=datasets)
    def test_reuse_enabled(self, index_kind, pair, seed):
        relaxed_v, strict_v = pair
        if relaxed_v == strict_v:
            return  # self-reuse is rejected by design; nothing to check
        points = _points(seed)
        build = INDEX_BUILDERS[index_kind]
        strict = dbscan(
            points, strict_v.eps, strict_v.minpts,
            index=build(points, strict_v.eps),
        )
        reused = variant_dbscan(
            points,
            relaxed_v,
            strict,
            t_high=RTree(points, r=1),
            t_low=build(points, relaxed_v.eps),
        )
        assert reused.reused_from == strict_v
        assert_metamorphic(
            strict, reused,
            f"[{index_kind}] reuse {strict_v} -> {relaxed_v} (seed {seed})",
        )
