"""Differential oracle tests: VariantDBSCAN vs. plain DBSCAN vs. sklearn.

The paper reports per-point quality >= 0.998 (Section V-D, DBDC
metric) between VariantDBSCAN's reused results and from-scratch
DBSCAN.  These tests assert the same bar for **every scheduler x
reuse-policy combination**, with plain single-variant DBSCAN as the
oracle — and, when scikit-learn happens to be installed, against its
DBSCAN as an independent second oracle (skipped otherwise; the
container does not ship sklearn).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dbscan import dbscan
from repro.core.result import ClusteringResult
from repro.core.reuse import POLICIES
from repro.core.scheduling import SCHEDULERS
from repro.core.variants import VariantSet
from repro.exec.serial import SerialExecutor
from repro.index.rtree import RTree
from repro.metrics.quality import quality_score

QUALITY_BAR = 0.998

VARIANTS = VariantSet.from_product([0.45, 0.6, 0.75], [4, 8])


@pytest.fixture(scope="module")
def cloud(two_blobs):
    return two_blobs


@pytest.fixture(scope="module")
def oracle(cloud):
    """Plain DBSCAN per variant — computed once, shared by every combo."""
    index = RTree(cloud, r=1)
    return {
        v: dbscan(cloud, v.eps, v.minpts, index=index) for v in VARIANTS
    }


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
def test_quality_vs_plain_dbscan(cloud, oracle, scheduler_name, policy_name):
    executor = SerialExecutor(
        scheduler=SCHEDULERS[scheduler_name],
        reuse_policy=POLICIES[policy_name],
    )
    batch = executor.run(cloud, VARIANTS)
    reused = [r for r in batch.record.records if r.reused_from is not None]
    assert reused, "expected at least one variant to reuse results"
    for v in VARIANTS:
        q = quality_score(oracle[v], batch.results[v])
        assert q >= QUALITY_BAR, (
            f"{scheduler_name}/{policy_name}: variant {v} quality {q:.5f} "
            f"below {QUALITY_BAR} vs plain DBSCAN"
        )


def test_quality_vs_sklearn(cloud, oracle):
    """Independent oracle: scikit-learn's DBSCAN (skipped when absent)."""
    cluster_mod = pytest.importorskip(
        "sklearn.cluster", reason="scikit-learn not installed in this environment"
    )
    for v in VARIANTS:
        sk = cluster_mod.DBSCAN(eps=v.eps, min_samples=v.minpts).fit(cloud)
        labels = np.asarray(sk.labels_, dtype=np.int64)
        core = np.zeros(labels.shape[0], dtype=bool)
        core[sk.core_sample_indices_] = True
        sk_result = ClusteringResult(labels, core, variant=v)
        q = quality_score(sk_result, oracle[v])
        assert q >= QUALITY_BAR, (
            f"variant {v}: our DBSCAN vs sklearn quality {q:.5f}"
        )
        # Core points are order-independent: both implementations must
        # agree on them exactly.
        assert np.array_equal(core, oracle[v].core_mask)
