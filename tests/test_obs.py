"""Observability layer: spans, phase clocks, registry, exports, CLI.

The load-bearing assertions here are the ISSUE acceptance criteria:
the JSONL trace round-trips losslessly through the loader, and the
per-variant phase totals sum to within 5% of each variant's measured
wall-clock (the phase clocks partition the stopwatch window).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.dbscan import dbscan
from repro.core.variants import VariantSet
from repro.exec.procpool import ProcessPoolExecutorBackend
from repro.exec.serial import SerialExecutor
from repro.exec.simulated import SimulatedExecutor
from repro.exec.threadpool import ThreadPoolExecutorBackend
from repro.obs import (
    PHASE_PREFIX,
    MetricsRegistry,
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    resolve_tracer,
    use_tracer,
)

VARIANTS = VariantSet.from_product([0.5, 0.7], [4, 8])


@pytest.fixture(scope="module")
def cloud(two_blobs):
    return two_blobs


class TestSpanPrimitives:
    def test_span_records_interval_and_args(self):
        tracer = Tracer()
        with tracer.span("work", variant="(1,2)") as span:
            span.set(extra=3)
        (rec,) = tracer.records()
        assert rec.name == "work"
        assert rec.dur >= 0.0
        assert rec.args == {"variant": "(1,2)", "extra": 3}
        assert rec.thread  # thread name captured

    def test_instant_has_zero_duration(self):
        tracer = Tracer()
        tracer.instant("cache.evict", eps=0.5)
        (rec,) = tracer.records()
        assert rec.dur == 0.0
        assert rec.args == {"eps": 0.5}

    def test_phase_clock_partitions_time(self):
        tracer = Tracer()
        clock = tracer.phase_clock(variant="v")
        clock.switch("a")
        clock.switch("b")
        clock.switch("a")  # re-entering accumulates into the same total
        clock.finish()
        recs = {r.name: r for r in tracer.records()}
        assert set(recs) == {PHASE_PREFIX + "a", PHASE_PREFIX + "b"}
        for r in recs.values():
            assert r.args == {"variant": "v"}
            assert r.dur >= 0.0

    def test_finish_without_switch_emits_nothing(self):
        tracer = Tracer()
        tracer.phase_clock().finish()
        assert len(tracer) == 0

    def test_drain_empties_clear_clears(self):
        tracer = Tracer()
        tracer.instant("x")
        assert len(tracer.drain()) == 1
        assert len(tracer) == 0
        tracer.instant("y")
        tracer.clear()
        assert tracer.records() == []

    def test_add_records_rebases_and_relabels(self):
        tracer = Tracer()
        tracer.add_records(
            [SpanRecord("s", t0=1.0, dur=0.5)], thread="worker-3", offset=10.0
        )
        (rec,) = tracer.records()
        assert rec.t0 == 11.0
        assert rec.thread == "worker-3"

    def test_null_tracer_collects_nothing(self):
        null = NullTracer()
        with null.span("s") as sp:
            sp.set(a=1)
        clock = null.phase_clock()
        clock.switch("a")
        clock.finish()
        null.instant("i")
        assert len(null) == 0
        assert null.enabled is False

    def test_active_tracer_resolution(self):
        assert resolve_tracer(None) is get_tracer()
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            assert resolve_tracer(None) is tracer
        assert get_tracer() is NULL_TRACER
        assert resolve_tracer(tracer) is tracer


class TestKernelInstrumentation:
    def test_disabled_tracing_changes_nothing(self, cloud):
        base = dbscan(cloud, 0.6, 4)
        traced = Tracer()
        with use_tracer(traced):
            under = dbscan(cloud, 0.6, 4)
        assert np.array_equal(base.labels, under.labels)
        assert np.array_equal(base.core_mask, under.core_mask)
        assert base.counters.as_dict() == under.counters.as_dict()

    def test_dbscan_emits_phase_partition(self, cloud):
        tracer = Tracer()
        result = dbscan(cloud, 0.6, 4, tracer=tracer)
        phases = [r for r in tracer.records() if r.name.startswith(PHASE_PREFIX)]
        names = {r.name[len(PHASE_PREFIX):] for r in phases}
        assert {"setup", "outer_scan", "expand"} <= names
        total = sum(r.dur for r in phases)
        assert total == pytest.approx(result.elapsed, rel=0.05)


@pytest.mark.parametrize(
    # deterministic=False for the thread backend: its reuse pattern is
    # wall-clock dependent by design, so two runs agree on cluster
    # *structure* (quality metric) but not on label ids.
    "make, deterministic",
    [
        (lambda: SerialExecutor(), True),
        (lambda: SimulatedExecutor(n_threads=2), True),
        (lambda: ThreadPoolExecutorBackend(n_threads=2), False),
        (lambda: ProcessPoolExecutorBackend(n_threads=2), True),
    ],
    ids=["serial", "simulated", "threads", "processes"],
)
class TestExecutorTracing:
    def test_phases_cover_wall_clock(self, cloud, make, deterministic):
        tracer = Tracer()
        with use_tracer(tracer):
            batch = make().run(cloud, VARIANTS)
        registry = MetricsRegistry.from_batch(batch, tracer)
        coverage = registry.phase_coverage()
        assert set(coverage) == {str(v) for v in VARIANTS}
        # Acceptance criterion: per-variant phase totals sum to within
        # 5% of that variant's wall-clock.
        for variant, ratio in coverage.items():
            assert ratio == pytest.approx(1.0, abs=0.05), (variant, coverage)

    def test_variant_spans_present(self, cloud, make, deterministic):
        tracer = Tracer()
        with use_tracer(tracer):
            make().run(cloud, VARIANTS)
        walls = [r for r in tracer.records() if r.name == "variant"]
        assert sorted(r.args["variant"] for r in walls) == sorted(
            str(v) for v in VARIANTS
        )

    def test_results_identical_with_and_without_tracing(
        self, cloud, make, deterministic
    ):
        from repro.metrics.quality import quality_score

        plain = make().run(cloud, VARIANTS)
        with use_tracer(Tracer()):
            traced = make().run(cloud, VARIANTS)
        for v in VARIANTS:
            if deterministic:
                assert np.array_equal(
                    plain.results[v].labels, traced.results[v].labels
                )
            else:
                assert quality_score(plain.results[v], traced.results[v]) >= 0.998


class TestRegistry:
    @pytest.fixture(scope="class")
    def traced_batch(self, cloud):
        tracer = Tracer()
        with use_tracer(tracer):
            batch = SerialExecutor(cache_bytes=1 << 20).run(
                cloud, VARIANTS, dataset="two_blobs"
            )
        return batch, tracer

    def test_from_batch_collects_everything(self, traced_batch):
        batch, tracer = traced_batch
        registry = MetricsRegistry.from_batch(batch, tracer)
        assert len(registry.variant_rows) == len(VARIANTS)
        assert registry.meta["dataset"] == "two_blobs"
        assert registry.phase_names()
        # The serial executor ran with a cache: its stats instant was
        # folded into the cache dict, not kept as a span.
        assert registry.cache is not None
        assert registry.cache["hits"] + registry.cache["misses"] > 0
        assert 0.0 <= registry.cache_hit_rate <= 1.0
        assert not any(s.name == "cache.stats" for s in registry.spans)

    def test_totals_merge_counters(self, traced_batch):
        batch, tracer = traced_batch
        registry = MetricsRegistry.from_batch(batch, tracer)
        per_variant = sum(
            row["counters"]["neighbor_searches"] for row in registry.variant_rows
        )
        assert registry.totals.neighbor_searches == per_variant

    def test_phase_totals_filter_by_variant(self, traced_batch):
        batch, tracer = traced_batch
        registry = MetricsRegistry.from_batch(batch, tracer)
        label = str(VARIANTS[0])
        sub = registry.phase_totals(label)
        full = registry.phase_totals()
        assert sub
        for name, dur in sub.items():
            assert dur <= full[name] + 1e-12

    def test_summary_mentions_phases_and_cache(self, traced_batch):
        batch, tracer = traced_batch
        text = MetricsRegistry.from_batch(batch, tracer).summary()
        assert "per-phase breakdown" in text
        assert "cache:" in text
        assert "expand" in text


class TestExport:
    @pytest.fixture(scope="class")
    def registry(self, cloud):
        tracer = Tracer()
        with use_tracer(tracer):
            batch = SerialExecutor(cache_bytes=1 << 20).run(
                cloud, VARIANTS, dataset="two_blobs"
            )
        return MetricsRegistry.from_batch(batch, tracer)

    def test_jsonl_round_trip_is_lossless(self, registry, tmp_path):
        path = tmp_path / "trace.jsonl"
        registry.to_jsonl(path)
        loaded = MetricsRegistry.load_jsonl(path)
        assert loaded.meta == registry.meta
        assert loaded.spans == registry.spans
        assert loaded.variant_rows == registry.variant_rows
        assert loaded.cache == registry.cache
        assert loaded.totals.as_dict() == registry.totals.as_dict()
        # Derived views must agree too.
        assert loaded.phase_coverage() == registry.phase_coverage()

    def test_jsonl_rejects_unknown_line_type(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\n{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="mystery"):
            MetricsRegistry.load_jsonl(path)

    def test_chrome_trace_structure(self, registry, tmp_path):
        path = tmp_path / "trace.json"
        registry.to_chrome_trace(path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert events
        phases = {e["ph"] for e in events}
        assert "X" in phases and "M" in phases
        starts = [e["ts"] for e in events if e["ph"] == "X"]
        assert min(starts) >= 0.0  # rebased onto the earliest timestamp
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names  # worker tracks labeled


class TestTraceCli:
    def test_trace_command_writes_both_formats(self, tmp_path, capsys):
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        rc = main(
            [
                "trace",
                "SW1",
                "--eps", "0.4,0.5",
                "--minpts", "4",
                "--scale", "0.001",
                "--jsonl", str(jsonl),
                "--chrome", str(chrome),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-phase breakdown" in out
        assert "phase coverage" in out
        loaded = MetricsRegistry.load_jsonl(jsonl)
        assert len(loaded.variant_rows) == 2
        assert json.loads(chrome.read_text())["traceEvents"]
