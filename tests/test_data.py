"""Tests for the dataset substrate: synthetic generators, the TEC
simulator, and the Table I registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.registry import (
    DATASETS,
    DEFAULT_SCALE,
    DatasetSpec,
    clear_cache,
    dataset_names,
    default_scale,
    load_dataset,
)
from repro.data.synthetic import CLUSTERS_PER_POINT, SyntheticSpec, generate_synthetic
from repro.data.tec import TECMapModel, _restrict_to_best_window, generate_tec_points
from repro.util.errors import ValidationError
from repro.util.rng import resolve_rng


class TestSyntheticSpec:
    def test_counts(self):
        spec = SyntheticSpec(n_points=10_000, noise_fraction=0.3)
        assert spec.n_noise == 3000
        assert spec.n_clustered == 7000
        assert spec.n_clusters == round(10_000 * CLUSTERS_PER_POINT)

    def test_override(self):
        spec = SyntheticSpec(n_points=1000, n_clusters_override=7)
        assert spec.n_clusters == 7

    @pytest.mark.parametrize(
        "kw",
        [
            dict(n_points=0),
            dict(n_points=10, noise_fraction=1.0),
            dict(n_points=10, noise_fraction=-0.1),
            dict(n_points=10, extent=(0.0, 1.0)),
            dict(n_points=10, cluster_sigma=0.0),
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValidationError):
            SyntheticSpec(**kw)


class TestGenerateSynthetic:
    def test_exact_point_count_and_truth(self):
        spec = SyntheticSpec(n_points=1234, noise_fraction=0.2, n_clusters_override=5)
        pts, truth = generate_synthetic(spec, seed=1)
        assert pts.shape == (1234, 2)
        assert truth.shape == (1234,)
        assert (truth == -1).sum() == spec.n_noise
        assert set(np.unique(truth[truth >= 0])) <= set(range(5))

    def test_cf_cluster_sizes_uniform(self):
        spec = SyntheticSpec(n_points=2000, noise_fraction=0.1, n_clusters_override=4)
        _, truth = generate_synthetic(spec, seed=2)
        sizes = np.bincount(truth[truth >= 0])
        assert sizes.max() - sizes.min() <= 1

    def test_cv_cluster_sizes_vary(self):
        spec = SyntheticSpec(
            n_points=5000, noise_fraction=0.1, variable_sizes=True, n_clusters_override=8
        )
        _, truth = generate_synthetic(spec, seed=3)
        sizes = np.bincount(truth[truth >= 0], minlength=8)
        assert sizes.max() - sizes.min() > 5
        assert sizes.sum() == spec.n_clustered

    def test_points_inside_extent(self):
        spec = SyntheticSpec(n_points=500, extent=(30.0, 20.0))
        pts, _ = generate_synthetic(spec, seed=4)
        assert pts[:, 0].min() >= 0 and pts[:, 0].max() <= 30
        assert pts[:, 1].min() >= 0 and pts[:, 1].max() <= 20

    def test_deterministic(self):
        spec = SyntheticSpec(n_points=400)
        a, ta = generate_synthetic(spec, seed=5)
        b, tb = generate_synthetic(spec, seed=5)
        assert np.array_equal(a, b) and np.array_equal(ta, tb)

    def test_seed_changes_data(self):
        spec = SyntheticSpec(n_points=400)
        a, _ = generate_synthetic(spec, seed=5)
        b, _ = generate_synthetic(spec, seed=6)
        assert not np.array_equal(a, b)

    def test_emitted_in_scan_order(self):
        spec = SyntheticSpec(n_points=300)
        pts, _ = generate_synthetic(spec, seed=7)
        order = np.lexsort((pts[:, 1], pts[:, 0]))
        assert np.array_equal(order, np.arange(len(pts)))

    def test_clusters_actually_cluster(self):
        """Planted structure is recoverable: most points have near neighbors."""
        spec = SyntheticSpec(
            n_points=1000, noise_fraction=0.05, extent=(50, 25), n_clusters_override=3
        )
        pts, truth = generate_synthetic(spec, seed=8)
        for c in range(3):
            members = pts[truth == c]
            centroid = members.mean(axis=0)
            assert np.linalg.norm(members - centroid, axis=1).mean() < 4.0


class TestTEC:
    def test_exact_count_and_bounds(self):
        pts = generate_tec_points(777, seed=1)
        assert pts.shape == (777, 2)
        assert (-180 <= pts[:, 0]).all() and (pts[:, 0] <= 180.5).all()
        assert (-90 <= pts[:, 1]).all() and (pts[:, 1] <= 90.5).all()

    def test_deterministic(self):
        a = generate_tec_points(300, seed=9)
        b = generate_tec_points(300, seed=9)
        assert np.array_equal(a, b)

    def test_window_restriction_shrinks_extent(self):
        full = generate_tec_points(2000, seed=10)
        win = generate_tec_points(2000, seed=10, area_fraction=0.01)
        span = lambda p: np.ptp(p[:, 0]) * np.ptp(p[:, 1])
        assert span(win) < span(full)

    def test_window_preserves_density_scale(self):
        """n/area inside the window ~ constant when n and area shrink together."""
        big = generate_tec_points(20_000, seed=11)
        small = generate_tec_points(2_000, seed=11, area_fraction=0.1)
        # compare local crowding via median nearest-neighbor distance
        from scipy.spatial import cKDTree

        d_big = np.median(cKDTree(big).query(big, k=2)[0][:, 1])
        d_small = np.median(cKDTree(small).query(small, k=2)[0][:, 1])
        assert d_small < d_big * 3.5

    def test_restrict_to_best_window_math(self):
        dens = np.zeros((10, 20))
        dens[2:4, 5:9] = 1.0
        out = _restrict_to_best_window(dens, 0.25)
        assert out.sum() == pytest.approx(dens.sum())  # hot block captured
        assert (out[dens == 0] == 0).all()

    def test_points_in_scan_order(self):
        pts = generate_tec_points(500, seed=12)
        order = np.lexsort((pts[:, 1], pts[:, 0]))
        assert np.array_equal(order, np.arange(len(pts)))

    def test_model_validation(self):
        with pytest.raises(ValidationError):
            TECMapModel(threshold_quantile=1.5)
        with pytest.raises(ValidationError):
            TECMapModel(grid_resolution=0.0)
        with pytest.raises(ValidationError):
            generate_tec_points(0)
        with pytest.raises(ValidationError):
            generate_tec_points(10, area_fraction=0.0)

    def test_evaluate_shapes(self):
        m = TECMapModel(grid_resolution=2.0)
        lon, lat, tec, cov, tid = m.evaluate(resolve_rng(0))
        assert tec.shape == (len(lat), len(lon)) == cov.shape == tid.shape


class TestRegistry:
    def test_table1_names_complete(self):
        assert len(DATASETS) == 16
        assert set(dataset_names("SW")) == {"SW1", "SW2", "SW3", "SW4"}
        assert len(dataset_names("cF")) == 7
        assert len(dataset_names("cV")) == 5

    def test_paper_sizes(self):
        assert DATASETS["SW1"].full_size == 1_864_620
        assert DATASETS["cF_1M_5N"].full_size == 10**6
        assert DATASETS["cF_1M_5N"].noise == 0.05

    def test_scaled_load(self):
        ds = load_dataset("cF_10k_30N", scale=0.2)
        assert ds.n_points == 2000
        assert ds.truth is not None

    def test_min_points_floor(self):
        ds = load_dataset("cF_10k_5N", scale=0.001)
        assert ds.n_points == 500

    def test_sw_has_no_truth(self):
        ds = load_dataset("SW1", scale=0.002)
        assert ds.truth is None

    def test_eps_scale_identity(self):
        ds = load_dataset("cF_10k_5N", scale=0.1)
        assert ds.scale_eps(0.5) == 0.5

    def test_cache_returns_same_object(self):
        clear_cache()
        a = load_dataset("cF_10k_5N", scale=0.05)
        b = load_dataset("cF_10k_5N", scale=0.05)
        assert a is b
        clear_cache()
        c = load_dataset("cF_10k_5N", scale=0.05)
        assert c is not a

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            load_dataset("SW99")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValidationError):
            load_dataset("SW1", scale=0.0)

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert default_scale() == DEFAULT_SCALE
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert default_scale() == 0.5
        monkeypatch.setenv("REPRO_SCALE", "nope")
        with pytest.raises(ValidationError):
            default_scale()

    def test_deterministic_across_loads(self):
        clear_cache()
        a = load_dataset("cV_10k_30N", scale=0.1, cache=False)
        b = load_dataset("cV_10k_30N", scale=0.1, cache=False)
        assert np.array_equal(a.points, b.points)

    def test_spec_seed_stable(self):
        assert DatasetSpec("SW1", "SW", 1).seed == DatasetSpec("SW1", "SW", 2).seed
        assert DatasetSpec("SW1", "SW", 1).seed != DatasetSpec("SW2", "SW", 1).seed
