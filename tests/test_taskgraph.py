"""Task-graph planning: lowering modes, edge discipline, validation.

``lower_variants`` is pure planning (no execution), so these tests pin
the DAG shapes every backend's lowering policy relies on: soft donor
edges in variant mode, hard merge-sequencing in shard mode, and the
threshold-gated mixed fan-out of hybrid mode.
"""

from __future__ import annotations

import pytest

from repro.core.scheduling import PlannedVariant, SchedGreedy, SchedMinpts
from repro.core.taskgraph import (
    DEFAULT_SHARD_THRESHOLD,
    MergeTask,
    ShardTask,
    TaskGraph,
    VariantTask,
    lower_variants,
    merge_task_id,
    shard_task_id,
    variant_task_id,
)
from repro.core.variants import Variant, VariantSet

VSET = VariantSet.from_product([0.4, 0.5, 0.6], [4, 6])
PLAN = SchedGreedy().plan(VSET)


def task_ids(graph: TaskGraph) -> list[str]:
    return [t.task_id for t in graph.tasks]


class TestTaskIds:
    def test_id_formats(self):
        v = Variant(0.5, 4)
        assert variant_task_id(v) == "variant:0.5/4"
        assert shard_task_id(v, 2) == "shard:0.5/4#2"
        assert merge_task_id(v) == "merge:0.5/4"

    def test_ids_are_unique_across_grid(self):
        graph = lower_variants(PLAN, VSET, mode="shard", n_regions=3)
        ids = task_ids(graph)
        assert len(ids) == len(set(ids))


class TestVariantLowering:
    def test_one_task_per_planned_variant(self):
        graph = lower_variants(PLAN, VSET)
        assert len(graph) == len(PLAN)
        assert [t.variant for t in graph.variant_tasks()] == [
            p.variant for p in PLAN
        ]
        assert graph.shard_tasks() == [] and graph.merge_tasks() == []

    def test_donor_edges_are_soft(self):
        graph = lower_variants(PLAN, VSET)
        soft = [t for t in graph.tasks if t.soft_deps]
        assert soft, "a 3x2 grid must have at least one reuse edge"
        for t in graph.tasks:
            assert t.deps == ()  # nothing blocks dispatch in variant mode
        # every soft edge points at an earlier variant task
        seen: set[str] = set()
        for t in graph.tasks:
            for dep in t.soft_deps:
                assert dep in seen
            seen.add(t.task_id)

    def test_force_scratch_heads_have_no_donor_edge(self):
        plan = SchedMinpts().plan(VSET)
        graph = lower_variants(plan, VSET)
        for t in graph.variant_tasks():
            if t.planned.force_scratch:
                assert t.soft_deps == () and t.deps == ()

    def test_terminal_id_is_the_variant_task(self):
        graph = lower_variants(PLAN, VSET)
        v = PLAN[0].variant
        assert graph.terminal_id(v) == variant_task_id(v)
        with pytest.raises(KeyError):
            graph.terminal_id(Variant(9.9, 99))


class TestShardLowering:
    def test_fan_out_and_merge_per_variant(self):
        graph = lower_variants(PLAN, VSET, mode="shard", n_regions=3)
        assert len(graph.shard_tasks()) == 3 * len(PLAN)
        assert len(graph.merge_tasks()) == len(PLAN)
        for mt in graph.merge_tasks():
            assert mt.deps == tuple(
                shard_task_id(mt.variant, r) for r in range(3)
            )
        assert graph.sharded_variants() == [p.variant for p in PLAN]

    def test_consecutive_variants_hard_sequenced(self):
        graph = lower_variants(PLAN, VSET, mode="shard", n_regions=2)
        merges = graph.merge_tasks()
        shards_of = {
            p.variant: [
                t for t in graph.shard_tasks() if t.variant == p.variant
            ]
            for p in PLAN
        }
        for prev, p in zip(PLAN, PLAN[1:]):
            want = (merge_task_id(prev.variant),)
            for st in shards_of[p.variant]:
                assert st.deps == want
        for st in shards_of[PLAN[0].variant]:
            assert st.deps == ()
        assert len(merges) == len(PLAN)

    def test_single_region_still_fans_out(self):
        graph = lower_variants(PLAN, VSET, mode="shard", n_regions=1)
        assert len(graph.shard_tasks()) == len(PLAN)
        assert len(graph.merge_tasks()) == len(PLAN)

    def test_terminal_id_is_the_merge(self):
        graph = lower_variants(PLAN, VSET, mode="shard", n_regions=2)
        v = PLAN[0].variant
        assert graph.terminal_id(v) == merge_task_id(v)


class TestHybridLowering:
    def test_threshold_gates_fan_out(self):
        # below the default threshold nothing shards
        small = lower_variants(
            PLAN, VSET, mode="hybrid", n_regions=4, n_points=100
        )
        assert small.merge_tasks() == []
        assert len(small.variant_tasks()) == len(PLAN)
        # at/above it the scratch roots fan out
        big = lower_variants(
            PLAN, VSET, mode="hybrid", n_regions=4,
            n_points=DEFAULT_SHARD_THRESHOLD,
        )
        assert big.merge_tasks() != []

    def test_threshold_zero_shards_every_scratch_variant(self):
        graph = lower_variants(
            PLAN, VSET, mode="hybrid", n_regions=2, n_points=10,
            shard_threshold=0,
        )
        sharded = set(graph.sharded_variants())
        assert sharded  # the forest has at least one root
        # non-scratch variants stay whole
        assert len(graph.variant_tasks()) == len(PLAN) - len(sharded)

    def test_single_region_never_shards(self):
        graph = lower_variants(
            PLAN, VSET, mode="hybrid", n_regions=1, n_points=10 ** 9,
            shard_threshold=0,
        )
        assert graph.merge_tasks() == []

    def test_donor_on_sharded_root_is_hard(self):
        graph = lower_variants(
            PLAN, VSET, mode="hybrid", n_regions=2, n_points=10,
            shard_threshold=0,
        )
        sharded = set(graph.sharded_variants())
        merge_ids = {merge_task_id(v) for v in sharded}
        hard = [t for t in graph.variant_tasks() if t.deps]
        assert hard, "some chain must hang off a sharded root"
        for t in hard:
            assert set(t.deps) <= merge_ids
            assert t.soft_deps == ()
        # plain donor edges (if any) stay soft and never block
        for t in graph.variant_tasks():
            for dep in t.soft_deps:
                assert dep.startswith("variant:")

    def test_mixed_graph_is_topological(self):
        graph = lower_variants(
            PLAN, VSET, mode="hybrid", n_regions=3, n_points=10,
            shard_threshold=0,
        )
        seen: set[str] = set()
        for t in graph.tasks:
            for dep in t.deps:
                assert dep in seen
            seen.add(t.task_id)


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="lowering mode"):
            lower_variants(PLAN, VSET, mode="wat")
        with pytest.raises(ValueError, match="lowering mode"):
            TaskGraph((), mode="wat")

    def test_duplicate_task_id_rejected(self):
        p = PlannedVariant(Variant(0.5, 4))
        with pytest.raises(ValueError, match="duplicate"):
            TaskGraph((VariantTask(p), VariantTask(p)))

    def test_forward_hard_dep_rejected(self):
        v = Variant(0.5, 4)
        shard = ShardTask(v, 0, 1, deps=(merge_task_id(v),))
        merge = MergeTask(v, 1, deps=(shard.task_id,))
        with pytest.raises(ValueError, match="topological"):
            TaskGraph((shard, merge), mode="shard")

    def test_empty_graph_is_valid(self):
        graph = lower_variants([], VSET)
        assert len(graph) == 0
        assert graph.by_id == {}
