"""Tests for :class:`ClusteringResult` and label utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.result import NOISE, ClusteringResult, relabel_dense
from repro.util.errors import ValidationError


def make_result(labels, core=None, **kw):
    labels = np.asarray(labels, dtype=np.int64)
    if core is None:
        core = labels >= 0
    return ClusteringResult(labels, np.asarray(core, dtype=bool), **kw)


class TestConstruction:
    def test_basic_counts(self):
        r = make_result([0, 0, 1, -1, 1, 1])
        assert r.n_points == 6
        assert r.n_clusters == 2
        assert r.n_noise == 1

    def test_all_noise(self):
        r = make_result([-1, -1, -1])
        assert r.n_clusters == 0
        assert r.n_noise == 3

    def test_empty(self):
        r = make_result([])
        assert r.n_points == 0
        assert r.n_clusters == 0

    def test_gap_in_cluster_ids_rejected(self):
        with pytest.raises(ValidationError):
            make_result([0, 2])

    def test_labels_below_noise_rejected(self):
        with pytest.raises(ValidationError):
            make_result([-2, 0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            ClusteringResult(np.array([0, 1]), np.array([True]))

    def test_noise_mask(self):
        r = make_result([0, -1, 0])
        assert r.noise_mask.tolist() == [False, True, False]

    def test_reuse_fraction(self):
        r = make_result([0, 0, 1, 1], points_reused=2)
        assert r.reuse_fraction == 0.5

    def test_reuse_fraction_empty(self):
        assert make_result([]).reuse_fraction == 0.0


class TestPerClusterViews:
    def test_cluster_members_partition_clustered_points(self):
        labels = [0, 1, 0, -1, 2, 1, 0]
        r = make_result(labels)
        members = r.cluster_members()
        assert [m.tolist() for m in members] == [[0, 2, 6], [1, 5], [4]]

    def test_cluster_sizes(self):
        r = make_result([0, 1, 0, -1, 1, 1])
        assert r.cluster_sizes().tolist() == [2, 3]

    def test_cluster_sizes_empty(self):
        assert make_result([-1]).cluster_sizes().size == 0

    def test_cluster_mbbs(self):
        pts = np.array([[0.0, 0.0], [5.0, 5.0], [1.0, 2.0], [9.0, 9.0]])
        r = make_result([0, 1, 0, 1])
        mbbs = r.cluster_mbbs(pts)
        assert mbbs[0].tolist() == [0.0, 0.0, 1.0, 2.0]
        assert mbbs[1].tolist() == [5.0, 5.0, 9.0, 9.0]

    def test_densities_plain_and_squared(self):
        pts = np.array([[0.0, 0.0], [2.0, 1.0], [0.0, 1.0], [2.0, 0.0]])
        r = make_result([0, 0, 0, 0])
        d1 = r.cluster_densities(pts)
        d2 = r.cluster_densities(pts, squared=True)
        assert d1[0] == pytest.approx(4 / 2.0)
        assert d2[0] == pytest.approx(16 / 2.0)

    def test_densities_with_eps_augmentation(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        r = make_result([0, 0])
        d = r.cluster_densities(pts, eps=0.5)
        assert d[0] == pytest.approx(2 / 4.0)  # (1+1)*(1+1)

    def test_degenerate_cluster_density_finite(self):
        pts = np.array([[3.0, 3.0]])
        r = make_result([0])
        assert np.isfinite(r.cluster_densities(pts)[0])

    def test_members_cached(self):
        r = make_result([0, 0, 1])
        assert r.cluster_members() is r.cluster_members()


class TestSummary:
    def test_summary_keys(self):
        r = make_result([0, -1])
        s = r.summary()
        assert set(s) >= {"n_points", "n_clusters", "n_noise", "counters", "variant"}


class TestRelabelDense:
    def test_preserves_first_appearance_order(self):
        out, k = relabel_dense(np.array([5, 5, 2, -1, 9, 2]))
        assert out.tolist() == [0, 0, 1, -1, 2, 1]
        assert k == 3

    def test_already_dense_unchanged(self):
        out, k = relabel_dense(np.array([0, 1, -1, 0]))
        assert out.tolist() == [0, 1, -1, 0]
        assert k == 2

    def test_all_noise(self):
        out, k = relabel_dense(np.array([-1, -1]))
        assert out.tolist() == [-1, -1]
        assert k == 0

    def test_empty(self):
        out, k = relabel_dense(np.array([], dtype=np.int64))
        assert out.size == 0 and k == 0
