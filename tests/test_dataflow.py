"""Tests for the dataflow layer and the concurrency soundness rules.

Covers the CFG builder (exception edges, ``finally`` routing, branch
assume-facts), reaching definitions, call-graph summaries, the
resource-state lattice, the three dataflow rules (``shm-paths``,
``dag-soundness``, ``worker-boundary``), the trace-replay race checker,
SARIF export, the scope-tracking half of the rule visitor, and the
seeded-mutation acceptance checks: deleting a real release call,
demoting a real hard dep, and capturing a live object in a worker
submit must each produce exactly one finding.
"""

from __future__ import annotations

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro import analysis
from repro.analysis.dataflow.cfg import build_cfg, stmt_calls
from repro.analysis.dataflow.lattice import analyze_sites, find_sites
from repro.analysis.dataflow.reaching import compute_reaching, tags_at
from repro.analysis.dataflow.summaries import build_summaries
from repro.analysis.rules import RULES_BY_ID
from repro.analysis.rules.boundary import WorkerBoundaryRule
from repro.analysis.rules.dag import DagSoundnessRule
from repro.analysis.rules.shm import ShmLifecycleRule
from repro.analysis.rules.shm_paths import SPEC, ShmPathsRule
from repro.analysis.sarif import to_sarif
from repro.analysis.traces import (
    TRACE_RULE_ID,
    check_trace,
    check_traces,
    read_task_spans,
)
from repro.analysis.visitor import ModuleFile, Project, RuleVisitor, finding_at
from repro.cli import main

REPO = Path(__file__).resolve().parents[1]
GRAPH_PY = REPO / "src" / "repro" / "exec" / "graph.py"
TASKGRAPH_PY = REPO / "src" / "repro" / "core" / "taskgraph.py"
TRACE_FIXTURES = sorted((REPO / "traces").glob("*.jsonl"))

#: In-scope module names for each rule's synthetic sources.
ENGINE_MOD = "repro.engine.scratch"
RUNTIME_MOD = "repro.exec.graph"
LOWERING_MOD = "repro.core.taskgraph"
EXEC_MOD = "repro.exec.pools"

CONCURRENCY_RULES = [ShmPathsRule, DagSoundnessRule, WorkerBoundaryRule]


def check(sources, rules, baseline=None):
    return analysis.analyze_source(sources, rules=rules, baseline=baseline)


def rule_ids(report):
    return [f.rule for f in report.findings]


def make_project(sources):
    project = Project()
    for module, src in sources.items():
        src = textwrap.dedent(src)
        project.modules[module] = ModuleFile(
            path=module.replace(".", "/") + ".py",
            module=module,
            tree=ast.parse(src),
            source=src,
        )
    return project


def fn_named(src, name):
    tree = ast.parse(textwrap.dedent(src))
    return next(
        n
        for n in tree.body
        if isinstance(n, ast.FunctionDef) and n.name == name
    )


def node_at(cfg, lineno):
    return next(n for n in cfg.stmt_nodes() if n.stmt.lineno == lineno)


def only_fallible_raises(stmt):
    """``can_raise`` for tests: only calls literally named ``fallible``."""
    return any(
        isinstance(call.func, ast.Name) and call.func.id == "fallible"
        for call in stmt_calls(stmt)
    )


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------


class TestCfg:
    def test_linear_chain_reaches_exit(self):
        fn = fn_named("def f():\n    x = 1\n    y = 2\n", "f")
        cfg = build_cfg(fn)
        first, second = node_at(cfg, 2), node_at(cfg, 3)
        assert [e.dst for e in first.succ] == [second.index]
        assert [e.dst for e in second.succ] == [cfg.exit]

    def test_call_statement_gets_exceptional_edge(self):
        fn = fn_named("def f():\n    g()\n", "f")
        cfg = build_cfg(fn)
        node = node_at(cfg, 2)
        exc = [e for e in node.succ if e.exceptional]
        assert [e.dst for e in exc] == [cfg.raise_exit]

    def test_plain_assign_has_no_exceptional_edge(self):
        fn = fn_named("def f():\n    x = 1\n", "f")
        cfg = build_cfg(fn)
        assert not [e for e in node_at(cfg, 2).succ if e.exceptional]

    def test_compound_header_contributes_only_its_own_calls(self):
        # The `if` node must not inherit its body's calls: only g() is
        # evaluated when the header itself executes.
        tree = ast.parse("if g():\n    h()\n")
        calls = stmt_calls(tree.body[0])
        assert [c.func.id for c in calls] == ["g"]

    def test_deferred_lambda_body_excluded_from_stmt_calls(self):
        tree = ast.parse("fn = lambda: h()\n")
        assert stmt_calls(tree.body[0]) == []

    def test_is_none_assume_facts_point_at_the_right_arms(self):
        src = """
        def f(x):
            if x is None:
                a = 1
            else:
                b = 2
        """
        fn = fn_named(src, "f")
        cfg = build_cfg(fn)
        branch = node_at(cfg, 3)
        to_body = next(e for e in branch.succ if e.dst == node_at(cfg, 4).index)
        to_else = next(e for e in branch.succ if e.dst == node_at(cfg, 6).index)
        assert to_body.assume == ("x", True)
        assert to_else.assume == ("x", False)

    def test_truthiness_assume_facts(self):
        src = """
        def f(x):
            if x:
                a = 1
            else:
                b = 2
        """
        fn = fn_named(src, "f")
        cfg = build_cfg(fn)
        branch = node_at(cfg, 3)
        to_body = next(e for e in branch.succ if e.dst == node_at(cfg, 4).index)
        assert to_body.assume == ("x", False)  # truthy => not-None

    def test_loop_body_links_back_to_header(self):
        src = """
        def f(items):
            total = 0
            for i in items:
                total = total + i
            return total
        """
        fn = fn_named(src, "f")
        cfg = build_cfg(fn)
        header, body = node_at(cfg, 4), node_at(cfg, 5)
        assert header.index in [e.dst for e in body.succ]

    def test_finally_resume_edge_is_post_effect(self):
        # Regression: when a try body raises, the finally runs to
        # completion *before* the exception resumes — the edge from the
        # last finally statement to the outer raise exit must be an
        # ordinary (post-effect) edge, or a release performed there is
        # invisible on the exceptional path.
        src = """
        def f():
            fallible()
            try:
                fallible()
            finally:
                cleanup()
        """
        fn = fn_named(src, "f")
        cfg = build_cfg(fn, can_raise=only_fallible_raises)
        fin = node_at(cfg, 7)
        resume = [e for e in fin.succ if e.dst == cfg.raise_exit]
        assert resume
        assert all(not e.exceptional for e in resume)


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------


class TestReachingDefinitions:
    def test_both_branch_defs_reach_the_join(self):
        # Regression: the worklist must be seeded with every node —
        # seeding only the entry stalls on all-empty IN sets and no
        # definition ever propagates.
        src = """
        def f(c):
            if c:
                x = 1
            else:
                x = 2
            use(x)
        """
        fn = fn_named(src, "f")
        cfg = build_cfg(fn)
        rd = compute_reaching(cfg)
        defs = rd.at(node_at(cfg, 7).index, "x")
        assert len(defs) == 2

    def test_redefinition_kills_the_previous_def(self):
        src = """
        def f():
            x = 1
            x = 2
            use(x)
        """
        fn = fn_named(src, "f")
        cfg = build_cfg(fn)
        rd = compute_reaching(cfg)
        defs = rd.at(node_at(cfg, 5).index, "x")
        assert len(defs) == 1
        assert rd.defs[defs[0]].value == 2

    def test_tags_trace_through_definition_chains(self):
        src = """
        def f(parent):
            dep = merge_task_id(parent)
            soft = (dep,)
            use(soft)
        """
        fn = fn_named(src, "f")
        cfg = build_cfg(fn)
        rd = compute_reaching(cfg)
        use = node_at(cfg, 5)
        arg = stmt_calls(use.stmt)[0].args[0]
        assert tags_at(rd, use.index, arg, {"merge_task_id": "merge"}) == {
            "merge"
        }

    def test_loop_target_defs_are_opaque(self):
        src = """
        def f(items):
            for x in items:
                use(x)
        """
        fn = fn_named(src, "f")
        cfg = build_cfg(fn)
        rd = compute_reaching(cfg)
        use = node_at(cfg, 4)
        arg = stmt_calls(use.stmt)[0].args[0]
        # The loop target reaches, but carries no derivation tags.
        assert rd.at(use.index, "x")
        assert tags_at(rd, use.index, arg, {"merge_task_id": "merge"}) == set()


# ---------------------------------------------------------------------------
# Call-graph summaries
# ---------------------------------------------------------------------------


class TestSummaries:
    def test_releaser_call_credits_the_parameter(self):
        project = make_project(
            {"m": "def cleanup(seg):\n    release_segment(seg)\n"}
        )
        summaries = build_summaries(
            project,
            releasers=frozenset({"release_segment"}),
            release_methods=frozenset({"close"}),
        )
        assert summaries.functions["cleanup"].releases == {0}

    def test_transitive_credit_through_helpers(self):
        project = make_project(
            {
                "m": (
                    "def cleanup(seg):\n"
                    "    release_segment(seg)\n"
                    "def outer(s):\n"
                    "    cleanup(s)\n"
                )
            }
        )
        summaries = build_summaries(
            project,
            releasers=frozenset({"release_segment"}),
            release_methods=frozenset({"close"}),
        )
        assert summaries.functions["outer"].releases == {0}

    def test_nonraising_ctor_set(self):
        project = make_project(
            {
                "m": (
                    "@dataclass\n"
                    "class Frozen:\n"
                    "    x: int = 0\n"
                    "class Busy:\n"
                    "    def __init__(self):\n"
                    "        connect()\n"
                )
            }
        )
        summaries = build_summaries(
            project, releasers=frozenset(), release_methods=frozenset()
        )
        assert "Frozen" in summaries.nonraising_ctors
        assert "Busy" not in summaries.nonraising_ctors


# ---------------------------------------------------------------------------
# Resource-state lattice (direct, with a controlled can_raise)
# ---------------------------------------------------------------------------


def lattice_leaks(src, fn_name="grab"):
    src = textwrap.dedent(src)
    project = make_project({"m": src})
    summaries = build_summaries(
        project, releasers=SPEC.releasers, release_methods=SPEC.release_methods
    )
    fn = fn_named(src, fn_name)
    cfg = build_cfg(fn, can_raise=only_fallible_raises)
    sites = find_sites(fn, cfg, SPEC)
    return analyze_sites(fn, cfg, sites, SPEC, summaries)


class TestLattice:
    def test_summary_credited_helper_releases(self):
        leaks = lattice_leaks(
            """
            def cleanup(seg):
                release_segment(seg)

            def grab(name):
                shm = attach_shm(name)
                cleanup(shm)
            """
        )
        assert leaks == []

    def test_non_releasing_helper_leaks_on_the_normal_path(self):
        leaks = lattice_leaks(
            """
            def cleanup(seg):
                pass

            def grab(name):
                shm = attach_shm(name)
                cleanup(shm)
            """
        )
        assert len(leaks) == 1
        assert not leaks[0].exceptional

    def test_bare_argument_to_unknown_callee_transfers_ownership(self):
        leaks = lattice_leaks(
            """
            def grab(handle):
                store = PointStore.attach(handle)
                consume(store)
            """
        )
        assert leaks == []

    def test_view_argument_does_not_transfer_ownership(self):
        leaks = lattice_leaks(
            """
            def grab(handle):
                store = PointStore.attach(handle)
                consume(store.points)
            """
        )
        assert len(leaks) == 1
        assert not leaks[0].exceptional

    def test_walrus_acquisition_is_a_site(self):
        src = textwrap.dedent(
            """
            def grab(name):
                use((shm := attach_shm(name)))
                shm.close()
            """
        )
        fn = fn_named(src, "grab")
        cfg = build_cfg(fn, can_raise=only_fallible_raises)
        sites = find_sites(fn, cfg, SPEC)
        assert [s.bindings for s in sites] == [{"shm"}]

    def test_with_managed_acquisition_is_skipped(self):
        leaks = lattice_leaks(
            """
            def grab(name):
                with attach_shm(name) as shm:
                    fallible()
            """
        )
        assert leaks == []


# ---------------------------------------------------------------------------
# shm-paths (rule level, default can_raise)
# ---------------------------------------------------------------------------


class TestShmPaths:
    def test_leak_when_a_later_call_raises(self):
        report = check(
            {
                ENGINE_MOD: (
                    "def grab(name):\n"
                    "    shm = attach_shm(name)\n"
                    "    fallible()\n"
                    "    shm.close()\n"
                )
            },
            [ShmPathsRule],
        )
        assert rule_ids(report) == ["shm-paths"]
        assert report.findings[0].line == 2
        assert report.findings[0].qualname == "grab"

    def test_try_finally_release_is_clean(self):
        # Also the end-to-end regression for the finally resume edge:
        # the close in the finally must count on the exceptional path.
        report = check(
            {
                ENGINE_MOD: (
                    "def grab(name):\n"
                    "    shm = attach_shm(name)\n"
                    "    try:\n"
                    "        fallible()\n"
                    "    finally:\n"
                    "        shm.close()\n"
                )
            },
            [ShmPathsRule],
        )
        assert report.findings == []

    def test_multi_step_finally_teardown_is_clean(self):
        # close is trusted not to raise, so the two teardown steps do
        # not generate leak paths between themselves.
        report = check(
            {
                ENGINE_MOD: (
                    "def grab(name):\n"
                    "    a = attach_shm(name)\n"
                    "    try:\n"
                    "        b = attach_shm(name)\n"
                    "        fallible()\n"
                    "    finally:\n"
                    "        a.close()\n"
                    "        b.close()\n"
                )
            },
            [ShmPathsRule],
        )
        assert report.findings == []

    @pytest.mark.parametrize("guard", ["if shm is not None:", "if shm:"])
    def test_guarded_close_correlates_with_the_binding(self, guard):
        report = check(
            {
                ENGINE_MOD: (
                    "def grab(name, want):\n"
                    "    shm = None\n"
                    "    if want:\n"
                    "        shm = attach_shm(name)\n"
                    "    try:\n"
                    "        fallible()\n"
                    "    finally:\n"
                    f"        {guard}\n"
                    "            shm.close()\n"
                )
            },
            [ShmPathsRule],
        )
        assert report.findings == []

    def test_ifexp_acquisition_with_guarded_close_is_clean(self):
        report = check(
            {
                ENGINE_MOD: (
                    "def grab(name, want):\n"
                    "    shm = attach_shm(name) if want else None\n"
                    "    try:\n"
                    "        fallible()\n"
                    "    finally:\n"
                    "        if shm is not None:\n"
                    "            shm.close()\n"
                )
            },
            [ShmPathsRule],
        )
        assert report.findings == []

    def test_immediate_return_transfers_ownership(self):
        report = check(
            {
                ENGINE_MOD: (
                    "def grab(name):\n"
                    "    shm = attach_shm(name)\n"
                    "    return shm\n"
                )
            },
            [ShmPathsRule],
        )
        assert report.findings == []

    def test_leak_between_acquire_and_return(self):
        report = check(
            {
                ENGINE_MOD: (
                    "def grab(name):\n"
                    "    shm = attach_shm(name)\n"
                    "    fallible()\n"
                    "    return shm\n"
                )
            },
            [ShmPathsRule],
        )
        assert rule_ids(report) == ["shm-paths"]

    def test_attribute_store_transfers_ownership(self):
        report = check(
            {
                ENGINE_MOD: (
                    "class Store:\n"
                    "    def open(self, name):\n"
                    "        self._shm = attach_shm(name)\n"
                )
            },
            [ShmPathsRule],
        )
        assert report.findings == []

    def test_out_of_scope_modules_are_ignored(self):
        leaky = "def grab(name):\n    shm = attach_shm(name)\n    fallible()\n"
        report = check({"repro.core.widgets": leaky}, [ShmPathsRule])
        assert report.findings == []

    def test_pragma_suppresses_on_the_acquisition_line(self):
        report = check(
            {
                ENGINE_MOD: (
                    "def grab(name):\n"
                    "    shm = attach_shm(name)  # repro: allow[shm-paths]\n"
                    "    fallible()\n"
                )
            },
            [ShmPathsRule],
        )
        assert report.findings == []
        assert report.suppressed == 1

    def test_dataflow_finding_supersedes_the_syntactic_one(self):
        src = (
            "def grab():\n"
            '    shm = SharedMemory(name="x")\n'
            "    fallible()\n"
        )
        both = check({ENGINE_MOD: src}, [ShmPathsRule, ShmLifecycleRule])
        assert rule_ids(both) == ["shm-paths"]
        alone = check({ENGINE_MOD: src}, [ShmLifecycleRule])
        assert rule_ids(alone) == ["shm-lifecycle"]


# ---------------------------------------------------------------------------
# dag-soundness
# ---------------------------------------------------------------------------


class TestDagSoundness:
    def test_merge_derived_id_in_soft_deps(self):
        report = check(
            {
                LOWERING_MOD: (
                    "def lower(parent, payload):\n"
                    "    soft = (merge_task_id(parent),)\n"
                    "    return VariantTask(payload, soft_deps=soft)\n"
                )
            },
            [DagSoundnessRule],
        )
        assert rule_ids(report) == ["dag-soundness"]
        assert "merge-derived" in report.findings[0].message

    def test_variant_derived_soft_deps_are_fine(self):
        report = check(
            {
                LOWERING_MOD: (
                    "def lower(parent, payload):\n"
                    "    soft = (variant_task_id(parent),)\n"
                    "    return VariantTask(payload, soft_deps=soft)\n"
                )
            },
            [DagSoundnessRule],
        )
        assert report.findings == []

    def test_only_the_misbinding_constructor_is_blamed(self):
        report = check(
            {
                LOWERING_MOD: (
                    "def lower(parent, a, b):\n"
                    "    soft = (variant_task_id(parent),)\n"
                    "    first = VariantTask(a, soft_deps=soft)\n"
                    "    soft = (merge_task_id(parent),)\n"
                    "    second = VariantTask(b, soft_deps=soft)\n"
                    "    return first, second\n"
                )
            },
            [DagSoundnessRule],
        )
        assert [f.line for f in report.findings] == [5]

    def test_merge_task_without_deps(self):
        report = check(
            {
                LOWERING_MOD: (
                    "def lower(parent, shards):\n"
                    "    return MergeTask(parent)\n"
                )
            },
            [DagSoundnessRule],
        )
        assert rule_ids(report) == ["dag-soundness"]
        assert "without deps" in report.findings[0].message

    def test_filtered_fan_in_is_flagged_even_through_a_name(self):
        report = check(
            {
                LOWERING_MOD: (
                    "def lower(parent, shards):\n"
                    "    deps = [shard_task_id(s) for s in shards if s.alive]\n"
                    "    return MergeTask(parent, deps=deps)\n"
                )
            },
            [DagSoundnessRule],
        )
        assert rule_ids(report) == ["dag-soundness"]
        assert "filter" in report.findings[0].message

    def test_unfiltered_fan_in_is_fine(self):
        report = check(
            {
                LOWERING_MOD: (
                    "def lower(parent, shards):\n"
                    "    return MergeTask(\n"
                    "        parent,\n"
                    "        deps=tuple(shard_task_id(s) for s in shards),\n"
                    "    )\n"
                )
            },
            [DagSoundnessRule],
        )
        assert report.findings == []

    def test_soft_deps_must_not_gate_dispatch(self):
        report = check(
            {
                RUNTIME_MOD: (
                    "def dispatch(task, ready):\n"
                    "    if task.soft_deps:\n"
                    "        ready.append(task)\n"
                )
            },
            [DagSoundnessRule],
        )
        assert rule_ids(report) == ["dag-soundness"]
        assert "soft_deps" in report.findings[0].message

    def test_non_gating_soft_deps_read_is_fine(self):
        report = check(
            {
                RUNTIME_MOD: (
                    "def order_hints(task):\n"
                    "    return list(task.soft_deps)\n"
                )
            },
            [DagSoundnessRule],
        )
        assert report.findings == []

    def test_span_outside_a_with_block(self):
        report = check(
            {
                RUNTIME_MOD: (
                    "def run(tracer, payload):\n"
                    '    span = tracer.span("task", kind="variant")\n'
                    "    span.__enter__()\n"
                    "    return compute(payload)\n"
                )
            },
            [DagSoundnessRule],
        )
        assert rule_ids(report) == ["dag-soundness"]
        assert "with-block" in report.findings[0].message

    def test_with_span_is_fine(self):
        report = check(
            {
                RUNTIME_MOD: (
                    "def run(tracer, payload):\n"
                    '    with tracer.span("task", kind="variant"):\n'
                    "        return compute(payload)\n"
                )
            },
            [DagSoundnessRule],
        )
        assert report.findings == []

    def test_pulse_handle_leak_on_exception(self):
        report = check(
            {
                RUNTIME_MOD: (
                    "def worker(pulse, payload):\n"
                    "    hb = worker_pulse(pulse)\n"
                    '    hb.beat("start")\n'
                    "    result = compute(payload)\n"
                    "    hb.close()\n"
                    "    return result\n"
                )
            },
            [DagSoundnessRule],
        )
        assert rule_ids(report) == ["dag-soundness"]
        assert "worker_pulse" in report.findings[0].message

    def test_pulse_closed_in_finally_is_fine(self):
        report = check(
            {
                RUNTIME_MOD: (
                    "def worker(pulse, payload):\n"
                    "    hb = worker_pulse(pulse)\n"
                    "    try:\n"
                    '        hb.beat("start")\n'
                    "        return compute(payload)\n"
                    "    finally:\n"
                    "        hb.close()\n"
                )
            },
            [DagSoundnessRule],
        )
        assert report.findings == []

    def test_opener_module_must_beat(self):
        report = check(
            {
                RUNTIME_MOD: (
                    "def worker(pulse):\n"
                    "    hb = worker_pulse(pulse)\n"
                    "    try:\n"
                    "        return 0\n"
                    "    finally:\n"
                    "        hb.close()\n"
                )
            },
            [DagSoundnessRule],
        )
        assert rule_ids(report) == ["dag-soundness"]
        assert "never beats" in report.findings[0].message

    def test_set_tracer_without_reset(self):
        report = check(
            {
                RUNTIME_MOD: (
                    "def worker(tracer, payload):\n"
                    "    set_tracer(tracer)\n"
                    "    return compute(payload)\n"
                )
            },
            [DagSoundnessRule],
        )
        assert rule_ids(report) == ["dag-soundness"]
        assert "set_tracer(None)" in report.findings[0].message

    def test_set_tracer_with_reset_is_fine(self):
        report = check(
            {
                RUNTIME_MOD: (
                    "def worker(tracer, payload):\n"
                    "    set_tracer(tracer)\n"
                    "    try:\n"
                    "        return compute(payload)\n"
                    "    finally:\n"
                    "        set_tracer(None)\n"
                )
            },
            [DagSoundnessRule],
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# worker-boundary
# ---------------------------------------------------------------------------


class TestWorkerBoundary:
    def test_lambda_callee(self):
        report = check(
            {
                EXEC_MOD: (
                    "def fan_out(pool, items):\n"
                    "    return [pool.submit(lambda x: x + 1, i) for i in items]\n"
                )
            },
            [WorkerBoundaryRule],
        )
        assert rule_ids(report) == ["worker-boundary"]
        assert "lambda" in report.findings[0].message

    def test_nested_def_callee(self):
        report = check(
            {
                EXEC_MOD: (
                    "def fan_out(pool, items):\n"
                    "    def work(x):\n"
                    "        return x + 1\n"
                    "    return [pool.submit(work, i) for i in items]\n"
                )
            },
            [WorkerBoundaryRule],
        )
        assert rule_ids(report) == ["worker-boundary"]
        assert "nested function 'work'" in report.findings[0].message

    def test_self_argument(self):
        report = check(
            {
                EXEC_MOD: (
                    "class Runtime:\n"
                    "    def go(self, pool):\n"
                    "        return pool.submit(_worker, self)\n"
                    "def _worker(rt):\n"
                    "    return rt\n"
                )
            },
            [WorkerBoundaryRule],
        )
        assert rule_ids(report) == ["worker-boundary"]
        assert "self" in report.findings[0].message
        assert report.findings[0].qualname == "Runtime.go"

    def test_live_constructor_inline(self):
        report = check(
            {
                EXEC_MOD: (
                    "def go(pool):\n"
                    "    return pool.submit(_worker, Tracer())\n"
                    "def _worker(tracer):\n"
                    "    return tracer\n"
                )
            },
            [WorkerBoundaryRule],
        )
        assert rule_ids(report) == ["worker-boundary"]
        assert "Tracer(...)" in report.findings[0].message

    def test_handles_and_values_are_fine(self):
        report = check(
            {
                EXEC_MOD: (
                    "def go(pool, handle, ctx):\n"
                    "    return pool.submit(_worker, handle, ctx.fingerprint)\n"
                    "def _worker(handle, fingerprint):\n"
                    "    return attach(handle, fingerprint)\n"
                )
            },
            [WorkerBoundaryRule],
        )
        assert report.findings == []

    def test_modules_outside_exec_are_ignored(self):
        report = check(
            {
                "repro.engine.pools": (
                    "def go(pool):\n"
                    "    return pool.submit(lambda: 1)\n"
                )
            },
            [WorkerBoundaryRule],
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# Seeded mutations against the real sources (acceptance checks)
# ---------------------------------------------------------------------------

_SHARD_TEARDOWN = (
    "        if store is not None:\n"
    "            store.close()\n"
    "        if hb is not None:\n"
    "            hb.close()"
)
_MERGE_HARD_DEP = "hard = (merge_task_id(parent),)"


class TestSeededMutations:
    @pytest.fixture(scope="class")
    def graph_src(self):
        return GRAPH_PY.read_text()

    @pytest.fixture(scope="class")
    def taskgraph_src(self):
        return TASKGRAPH_PY.read_text()

    def test_unmutated_sources_are_clean(self, graph_src, taskgraph_src):
        report = check(
            {
                "repro.exec.graph": graph_src,
                "repro.core.taskgraph": taskgraph_src,
            },
            CONCURRENCY_RULES,
        )
        assert report.findings == []

    def test_deleting_a_release_call_yields_one_finding(self, graph_src):
        assert graph_src.count(_SHARD_TEARDOWN) == 1
        mutated = graph_src.replace(
            _SHARD_TEARDOWN,
            "        if hb is not None:\n            hb.close()",
        )
        report = check({"repro.exec.graph": mutated}, CONCURRENCY_RULES)
        assert rule_ids(report) == ["shm-paths"]
        assert report.findings[0].qualname == "_shard_worker"

    def test_demoting_a_hard_dep_yields_one_finding(self, taskgraph_src):
        assert taskgraph_src.count(_MERGE_HARD_DEP) == 1
        mutated = taskgraph_src.replace(
            _MERGE_HARD_DEP, "soft = (merge_task_id(parent),)"
        )
        report = check({"repro.core.taskgraph": mutated}, CONCURRENCY_RULES)
        assert rule_ids(report) == ["dag-soundness"]
        assert "merge-derived" in report.findings[0].message

    def test_live_session_in_a_submit_yields_one_finding(self, graph_src):
        mutated = graph_src + (
            "\n\ndef _rogue_submit(pool, points, group):\n"
            "    session = Session(points)\n"
            "    return pool.submit(_chain_worker, session, group)\n"
        )
        report = check({"repro.exec.graph": mutated}, CONCURRENCY_RULES)
        assert rule_ids(report) == ["worker-boundary"]
        assert "'session'" in report.findings[0].message
        assert report.findings[0].qualname == "_rogue_submit"


# ---------------------------------------------------------------------------
# Trace replay
# ---------------------------------------------------------------------------


def span_line(task_id, kind, deps, t0, dur, soft=()):
    args = {"kind": kind, "id": task_id, "deps": list(deps)}
    if soft:
        args["soft"] = list(soft)
    return json.dumps(
        {
            "type": "span",
            "name": "task",
            "cat": "task",
            "t0": t0,
            "dur": dur,
            "thread": "w0",
            "args": args,
        }
    )


def write_trace(tmp_path, name, lines):
    path = tmp_path / name
    path.write_text("\n".join(lines) + "\n")
    return path


class TestTraceReplay:
    def test_read_skips_non_task_lines(self, tmp_path):
        path = write_trace(
            tmp_path,
            "t.jsonl",
            [
                json.dumps({"type": "meta", "note": "header"}),
                json.dumps(
                    {"type": "span", "name": "cache", "t0": 0.0, "dur": 0.1}
                ),
                span_line("shard:a#0", "shard", [], 0.0, 1.0),
            ],
        )
        spans = read_task_spans(path)
        assert [s.task_id for s in spans] == ["shard:a#0"]
        assert spans[0].line == 3

    def test_bad_json_raises_with_the_line_number(self, tmp_path):
        path = write_trace(tmp_path, "t.jsonl", ["{not json"])
        with pytest.raises(ValueError, match=":1"):
            read_task_spans(path)

    def test_ordered_trace_is_clean(self, tmp_path):
        path = write_trace(
            tmp_path,
            "t.jsonl",
            [
                span_line("shard:a#0", "shard", [], 0.0, 1.0),
                span_line("merge:a", "merge", ["shard:a#0"], 1.5, 0.2),
            ],
        )
        assert check_trace(path) == []

    def test_consumer_overlapping_its_producer_is_flagged(self, tmp_path):
        path = write_trace(
            tmp_path,
            "t.jsonl",
            [
                span_line("shard:a#0", "shard", [], 0.0, 1.0),
                span_line("merge:a", "merge", ["shard:a#0"], 0.5, 0.2),
            ],
        )
        findings = check_trace(path)
        assert [f.rule for f in findings] == [TRACE_RULE_ID]
        assert findings[0].qualname == "merge:a"
        assert findings[0].line == 2

    def test_untraced_producer_is_recovery_not_a_race(self, tmp_path):
        path = write_trace(
            tmp_path,
            "t.jsonl",
            [span_line("merge:a", "merge", ["shard:dead#0"], 0.5, 0.2)],
        )
        assert check_trace(path) == []

    def test_exact_boundary_is_within_tolerance(self, tmp_path):
        path = write_trace(
            tmp_path,
            "t.jsonl",
            [
                span_line("shard:a#0", "shard", [], 0.0, 1.0),
                span_line("merge:a", "merge", ["shard:a#0"], 1.0, 0.2),
            ],
        )
        assert check_trace(path) == []

    def test_soft_deps_impose_no_order(self, tmp_path):
        path = write_trace(
            tmp_path,
            "t.jsonl",
            [
                span_line("variant:donor", "variant", [], 0.0, 1.0),
                span_line(
                    "variant:reuse", "variant", [], 0.2, 0.3,
                    soft=["variant:donor"],
                ),
            ],
        )
        assert check_trace(path) == []

    def test_committed_traces_are_accepted(self):
        assert len(TRACE_FIXTURES) >= 3
        findings, checked = check_traces(list(TRACE_FIXTURES))
        assert findings == []
        assert sum(checked.values()) > 0

    def test_reordered_committed_trace_is_rejected(self, tmp_path):
        src = REPO / "traces" / "chaos_sharded.jsonl"
        lines = []
        for raw in src.read_text().splitlines():
            obj = json.loads(raw)
            args = obj.get("args") or {}
            if obj.get("name") == "task" and args.get("kind") == "merge":
                obj["t0"] = 0.0  # merge now starts before its shards
            lines.append(json.dumps(obj))
        path = write_trace(tmp_path, "reordered.jsonl", lines)
        findings = check_trace(path)
        assert findings
        assert all(f.rule == TRACE_RULE_ID for f in findings)


# ---------------------------------------------------------------------------
# SARIF export
# ---------------------------------------------------------------------------


class TestSarif:
    def test_document_structure(self):
        report = check(
            {
                ENGINE_MOD: (
                    "def grab(name):\n"
                    "    shm = attach_shm(name)\n"
                    "    fallible()\n"
                )
            },
            [ShmPathsRule],
        )
        doc = to_sarif(report.findings)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-check"
        (result,) = run["results"]
        assert result["ruleId"] == "shm-paths"
        declared = run["tool"]["driver"]["rules"][result["ruleIndex"]]
        assert declared["id"] == "shm-paths"
        loc = result["locations"][0]
        assert loc["physicalLocation"]["region"]["startLine"] == 2
        assert loc["logicalLocations"] == [{"fullyQualifiedName": "grab"}]
        finding = report.findings[0]
        assert result["partialFingerprints"] == {
            "reproCheckKey/v1": finding.key()
        }

    def test_every_rule_is_declared_even_with_no_findings(self):
        doc = to_sarif([])
        declared = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert set(RULES_BY_ID) <= declared
        assert TRACE_RULE_ID in declared
        assert doc["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# Engine: per-rule stats, baseline keys across line drift
# ---------------------------------------------------------------------------


class TestEngineReporting:
    def test_per_rule_stats(self):
        sources = {
            ENGINE_MOD: "def ok(name):\n    return name\n",
            LOWERING_MOD: "def lower(p):\n    return p\n",
        }
        report = check(sources, [ShmPathsRule, DagSoundnessRule])
        assert set(report.stats) == {"shm-paths", "dag-soundness"}
        for stat in report.stats.values():
            assert stat["files"] == len(sources)
            assert stat["findings"] == 0
            assert stat["wall_s"] >= 0

    def test_baseline_key_survives_line_drift(self):
        body = (
            "def grab(name):\n"
            "    shm = attach_shm(name)\n"
            "    fallible()\n"
        )
        drifted = "# a comment\n\n\n" + body
        key = check({ENGINE_MOD: body}, [ShmPathsRule]).findings[0].key()
        drifted_report = check({ENGINE_MOD: drifted}, [ShmPathsRule])
        assert drifted_report.findings[0].key() == key
        # ... and the baseline entry keeps suppressing after the drift.
        baselined = check({ENGINE_MOD: drifted}, [ShmPathsRule], baseline={key})
        assert baselined.findings == []
        assert [f.key() for f in baselined.baselined] == [key]
        assert baselined.stale_baseline == []

    def test_rules_are_registered(self):
        for rule_id in ("shm-paths", "dag-soundness", "worker-boundary"):
            assert rule_id in RULES_BY_ID


# ---------------------------------------------------------------------------
# Visitor scope tracking (qualnames, anonymous scopes, TYPE_CHECKING)
# ---------------------------------------------------------------------------


class FlagRule(RuleVisitor):
    """Test rule: report every load of the name ``FLAG``."""

    rule_id = "test-flag"

    def visit_Name(self, node):
        if node.id == "FLAG" and not self.in_type_checking:
            self.report(node, "flagged")
        self.generic_visit(node)


def flag_findings(src):
    src = textwrap.dedent(src)
    mf = ModuleFile(path="m.py", module="m", tree=ast.parse(src), source=src)
    return FlagRule(mf).run()


class TestScopeTracking:
    def test_nested_function_qualname(self):
        found = flag_findings(
            """
            def outer():
                def inner():
                    return FLAG
            """
        )
        assert [f.qualname for f in found] == ["outer.inner"]

    def test_scope_pops_after_a_nested_def(self):
        found = flag_findings(
            """
            def outer():
                def inner():
                    pass
                return FLAG
            """
        )
        assert [f.qualname for f in found] == ["outer"]

    def test_lambda_scope(self):
        found = flag_findings("def outer():\n    fn = lambda: FLAG\n")
        assert [f.qualname for f in found] == ["outer.<lambda>"]

    @pytest.mark.parametrize(
        ("expr", "label"),
        [
            ("[FLAG for _ in items]", "<listcomp>"),
            ("{FLAG for _ in items}", "<setcomp>"),
            ("{FLAG: 1 for _ in items}", "<dictcomp>"),
            ("list(FLAG for _ in items)", "<genexpr>"),
        ],
    )
    def test_comprehension_scopes(self, expr, label):
        found = flag_findings(f"def outer(items):\n    return {expr}\n")
        assert [f.qualname for f in found] == [f"outer.{label}"]

    def test_comprehension_without_the_name_is_silent(self):
        assert flag_findings(
            "def outer(items):\n    return [x for x in items]\n"
        ) == []

    def test_class_method_qualname(self):
        found = flag_findings(
            """
            class C:
                def m(self):
                    return FLAG
            """
        )
        assert [f.qualname for f in found] == ["C.m"]

    def test_module_level_qualname_is_empty(self):
        found = flag_findings("x = FLAG\n")
        assert [f.qualname for f in found] == [""]

    def test_walrus_inside_a_comprehension(self):
        found = flag_findings(
            "def outer(items):\n    return [y for _ in items if (y := FLAG)]\n"
        )
        assert [f.qualname for f in found] == ["outer.<listcomp>"]

    @pytest.mark.parametrize(
        "header",
        ["if TYPE_CHECKING:", "if typing.TYPE_CHECKING:"],
    )
    def test_type_checking_blocks_are_skipped(self, header):
        found = flag_findings(
            f"{header}\n"
            "    x = FLAG\n"
            "y = FLAG\n"
        )
        assert [f.line for f in found] == [3]

    def test_type_checking_else_branch_still_counts(self):
        found = flag_findings(
            "if TYPE_CHECKING:\n"
            "    x = 1\n"
            "else:\n"
            "    y = FLAG\n"
        )
        assert [f.line for f in found] == [4]

    def test_finding_at_recovers_the_scope_chain(self):
        src = "def outer(shards):\n    return [s for s in shards]\n"
        mf = ModuleFile(
            path="m.py", module="m", tree=ast.parse(src), source=src
        )
        comp = next(
            n for n in ast.walk(mf.tree) if isinstance(n, ast.ListComp)
        )
        f = finding_at(mf, comp.elt, "test-flag", "msg")
        assert f.qualname == "outer.<listcomp>"


# ---------------------------------------------------------------------------
# CLI: --traces, --sarif, --json
# ---------------------------------------------------------------------------


class TestCheckCli:
    def test_traces_accept_the_committed_fixtures(self, capsys):
        rc = main(["check", "--traces", *map(str, TRACE_FIXTURES)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 happens-before violation(s)" in out

    def test_traces_reject_a_reordered_trace(self, tmp_path, capsys):
        path = write_trace(
            tmp_path,
            "bad.jsonl",
            [
                span_line("shard:a#0", "shard", [], 0.0, 1.0),
                span_line("merge:a", "merge", ["shard:a#0"], 0.2, 0.2),
            ],
        )
        rc = main(["check", "--traces", str(path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "trace-race" in out

    def test_traces_missing_file_is_a_usage_error(self, tmp_path, capsys):
        rc = main(["check", "--traces", str(tmp_path / "nope.jsonl")])
        assert rc == 2

    def test_traces_json_output(self, tmp_path, capsys):
        path = write_trace(
            tmp_path,
            "ok.jsonl",
            [span_line("shard:a#0", "shard", [], 0.0, 1.0)],
        )
        rc = main(["check", "--traces", str(path), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["findings"] == []
        assert payload["spans_checked"] == {str(path): 1}

    @pytest.fixture()
    def leaky_tree(self, tmp_path):
        pkg = tmp_path / "repro" / "engine"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "scratch.py").write_text(
            "def grab(name):\n"
            "    shm = attach_shm(name)\n"
            "    fallible()\n"
        )
        return tmp_path / "repro"

    def test_sarif_flag_writes_a_document(self, leaky_tree, tmp_path, capsys):
        out = tmp_path / "findings.sarif"
        rc = main(["check", str(leaky_tree), "--sarif", str(out)])
        assert rc == 1
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
        assert [r["ruleId"] for r in doc["runs"][0]["results"]] == [
            "shm-paths"
        ]

    def test_json_reports_per_rule_stats(self, leaky_tree, capsys):
        rc = main(["check", str(leaky_tree), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        (finding,) = [
            f for f in payload["findings"] if f["rule"] == "shm-paths"
        ]
        assert finding["qualname"] == "grab"
        assert " :: " in finding["key"]
        stats = payload["stats"]["shm-paths"]
        assert set(stats) == {"wall_s", "files", "findings"}
        assert stats["findings"] == 1
