"""Tests for IncrementalDBSCAN (:mod:`repro.core.incremental`).

The defining property: after any sequence of insertions, the maintained
clustering equals a from-scratch DBSCAN over the accumulated points, up
to border-point order dependence (same tolerance as VariantDBSCAN).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dbscan import dbscan
from repro.core.incremental import IncrementalDBSCAN
from repro.metrics.quality import quality_score
from repro.util.rng import resolve_rng

coord = st.floats(0.0, 12.0, allow_nan=False)


def assert_equivalent(inc: IncrementalDBSCAN, min_quality=0.99):
    snap = inc.snapshot()
    ref = dbscan(inc.points, inc.eps, inc.minpts)
    assert quality_score(ref, snap) >= min_quality
    assert np.array_equal(snap.core_mask, ref.core_mask), "core sets must be exact"
    return snap, ref


class TestBootstrap:
    def test_single_batch_equals_dbscan(self, two_blobs):
        inc = IncrementalDBSCAN(0.6, 4)
        inc.insert(two_blobs)
        snap, ref = assert_equivalent(inc)
        assert snap.n_clusters == ref.n_clusters

    def test_empty_insert_is_noop(self):
        inc = IncrementalDBSCAN(1.0, 3)
        snap = inc.insert(np.empty((0, 2)))
        assert snap.n_points == 0

    def test_validation(self):
        with pytest.raises(Exception):
            IncrementalDBSCAN(-1.0, 3)


class TestIncrementalInsertions:
    def test_two_batches_equal_one(self, two_blobs):
        inc = IncrementalDBSCAN(0.6, 4)
        inc.insert(two_blobs[:150])
        inc.insert(two_blobs[150:])
        assert_equivalent(inc)

    def test_many_small_batches(self, two_blobs):
        inc = IncrementalDBSCAN(0.6, 4)
        for i in range(0, len(two_blobs), 37):
            inc.insert(two_blobs[i : i + 37])
        assert_equivalent(inc)

    def test_noise_promoted_to_cluster(self):
        """Sparse points become a cluster once enough arrive."""
        inc = IncrementalDBSCAN(1.0, 4)
        base = np.array([[0.0, 0.0], [0.5, 0.0]])
        snap = inc.insert(base)
        assert snap.n_clusters == 0
        snap = inc.insert(np.array([[0.0, 0.5], [0.5, 0.5], [0.25, 0.25]]))
        assert snap.n_clusters == 1
        assert snap.n_noise == 0
        assert_equivalent(inc)

    def test_bridge_merges_clusters(self):
        """Inserting a dense bridge merges two existing clusters."""
        g = resolve_rng(5)
        a = g.normal(0.0, 0.3, (40, 2))
        b = g.normal([6.0, 0.0], 0.3, (40, 2))
        inc = IncrementalDBSCAN(0.8, 4)
        snap = inc.insert(np.vstack([a, b]))
        assert snap.n_clusters == 2
        bridge = np.column_stack([np.linspace(0, 6, 30), g.normal(0, 0.05, 30)])
        snap = inc.insert(bridge)
        assert snap.n_clusters == 1
        assert_equivalent(inc)

    def test_clusters_only_grow_or_merge(self, two_blobs):
        """Insertion monotonicity: co-members stay co-members."""
        inc = IncrementalDBSCAN(0.6, 4)
        snap1 = inc.insert(two_blobs[:200])
        snap2 = inc.insert(two_blobs[200:])
        for c in range(snap1.n_clusters):
            members = np.flatnonzero(snap1.labels == c)
            assert np.unique(snap2.labels[members]).size == 1
        # clustered points never revert to noise
        was = snap1.labels >= 0
        assert (snap2.labels[: len(snap1.labels)][was] >= 0).all()

    def test_core_points_never_demoted(self, two_blobs):
        inc = IncrementalDBSCAN(0.6, 4)
        s1 = inc.insert(two_blobs[:200])
        s2 = inc.insert(two_blobs[200:])
        assert (s2.core_mask[: s1.n_points][s1.core_mask]).all()

    def test_duplicate_points(self):
        inc = IncrementalDBSCAN(0.5, 4)
        inc.insert(np.array([[1.0, 1.0]] * 3))
        snap = inc.insert(np.array([[1.0, 1.0]] * 3))
        assert snap.n_clusters == 1
        assert_equivalent(inc)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=60),
        st.integers(1, 5),
        st.floats(0.4, 2.5),
        st.integers(2, 5),
    )
    def test_property_matches_scratch(self, pts, n_batches, eps, minpts):
        arr = np.asarray(pts, dtype=np.float64).reshape(-1, 2)
        inc = IncrementalDBSCAN(eps, minpts)
        for chunk in np.array_split(arr, min(n_batches, len(arr))):
            if chunk.size:
                inc.insert(chunk)
        snap = inc.snapshot()
        ref = dbscan(arr, eps, minpts)
        assert np.array_equal(snap.core_mask, ref.core_mask)
        assert quality_score(ref, snap) >= 0.95


class TestRepr:
    def test_repr(self):
        inc = IncrementalDBSCAN(0.5, 4)
        assert "IncrementalDBSCAN" in repr(inc)
