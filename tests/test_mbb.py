"""Unit tests for MBB geometry (:mod:`repro.index.mbb`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.index.mbb import (
    augment_mbb,
    mbb_area,
    mbb_contains_points,
    mbb_of_points,
    mbbs_overlap,
    point_query_mbb,
)

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestMbbOfPoints:
    def test_single_point_degenerate_box(self):
        mbb = mbb_of_points(np.array([[3.0, 4.0]]))
        assert mbb.tolist() == [3.0, 4.0, 3.0, 4.0]

    def test_two_points(self):
        mbb = mbb_of_points(np.array([[1.0, 5.0], [2.0, -1.0]]))
        assert mbb.tolist() == [1.0, -1.0, 2.0, 5.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mbb_of_points(np.empty((0, 2)))

    @given(
        st.lists(st.tuples(finite, finite), min_size=1, max_size=30)
    )
    def test_contains_all_inputs(self, pts):
        arr = np.asarray(pts, dtype=np.float64)
        mbb = mbb_of_points(arr)
        assert mbb_contains_points(mbb, arr).all()


class TestAugment:
    def test_augment_grows_all_sides(self):
        out = augment_mbb(np.array([0.0, 0.0, 1.0, 1.0]), 0.5)
        assert out.tolist() == [-0.5, -0.5, 1.5, 1.5]

    def test_augment_does_not_mutate_input(self):
        src = np.array([0.0, 0.0, 1.0, 1.0])
        augment_mbb(src, 1.0)
        assert src.tolist() == [0.0, 0.0, 1.0, 1.0]

    def test_point_query_mbb_is_augmented_degenerate_box(self):
        a = point_query_mbb(2.0, 3.0, 0.25)
        b = augment_mbb(mbb_of_points(np.array([[2.0, 3.0]])), 0.25)
        assert np.array_equal(a, b)


class TestOverlap:
    def test_disjoint(self):
        q = np.array([0.0, 0.0, 1.0, 1.0])
        boxes = np.array([[2.0, 2.0, 3.0, 3.0]])
        assert not mbbs_overlap(q, boxes)[0]

    def test_touching_edges_count_as_overlap(self):
        q = np.array([0.0, 0.0, 1.0, 1.0])
        boxes = np.array([[1.0, 0.0, 2.0, 1.0]])
        assert mbbs_overlap(q, boxes)[0]

    def test_containment_is_overlap(self):
        q = np.array([0.0, 0.0, 10.0, 10.0])
        boxes = np.array([[4.0, 4.0, 5.0, 5.0]])
        assert mbbs_overlap(q, boxes)[0]

    def test_batch_mix(self):
        q = np.array([0.0, 0.0, 1.0, 1.0])
        boxes = np.array(
            [[0.5, 0.5, 2.0, 2.0], [5.0, 5.0, 6.0, 6.0], [-1.0, -1.0, 0.0, 0.0]]
        )
        assert mbbs_overlap(q, boxes).tolist() == [True, False, True]

    def test_single_box_1d_input(self):
        q = np.array([0.0, 0.0, 1.0, 1.0])
        assert mbbs_overlap(q, np.array([0.5, 0.5, 2.0, 2.0])).tolist() == [True]

    @given(finite, finite, st.floats(0.01, 100.0))
    def test_overlap_is_symmetric(self, x, y, eps):
        a = point_query_mbb(x, y, eps)
        b = point_query_mbb(x + eps, y, eps)
        assert mbbs_overlap(a, b.reshape(1, 4))[0] == mbbs_overlap(b, a.reshape(1, 4))[0]


class TestAreaAndContainment:
    def test_area(self):
        assert mbb_area(np.array([0.0, 0.0, 2.0, 3.0])) == 6.0

    def test_degenerate_area_zero(self):
        assert mbb_area(np.array([1.0, 1.0, 1.0, 1.0])) == 0.0

    def test_contains_boundary_points(self):
        mbb = np.array([0.0, 0.0, 1.0, 1.0])
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.5], [1.0001, 0.5]])
        assert mbb_contains_points(mbb, pts).tolist() == [True, True, True, False]
