"""Tests for the external validation indices (:mod:`repro.metrics.external`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.external import (
    adjusted_rand_index,
    contingency_table,
    purity,
    rand_index,
)
from repro.util.errors import ValidationError
from repro.util.rng import resolve_rng

labels = st.lists(st.integers(-1, 4), min_size=2, max_size=50)


class TestContingency:
    def test_basic_table(self):
        t = contingency_table([0, 0, 1], [0, 1, 1])
        assert t.tolist() == [[1, 1], [0, 1]]

    def test_noise_becomes_singletons(self):
        t = contingency_table([-1, -1], [0, 0])
        assert t.shape == (2, 1)
        assert t.sum() == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            contingency_table([0], [0, 1])


class TestRand:
    def test_identical_is_one(self):
        assert rand_index([0, 0, 1, 1], [0, 0, 1, 1]) == 1.0
        assert adjusted_rand_index([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0

    def test_known_value(self):
        # pairs: (0,1) together/together, (2,3) apart in b
        ri = rand_index([0, 0, 1, 1], [0, 0, 1, 2])
        assert ri == pytest.approx(5 / 6)

    def test_all_noise_vs_all_noise(self):
        assert rand_index([-1, -1, -1], [-1, -1, -1]) == 1.0

    def test_everything_noise_is_not_perfect_vs_clusters(self):
        """Noise-as-singletons prevents degenerate perfect scores."""
        assert adjusted_rand_index([-1, -1, -1, -1], [0, 0, 0, 0]) <= 0.0

    def test_ari_chance_near_zero(self):
        g = resolve_rng(0)
        a = g.integers(0, 5, 400)
        b = g.integers(0, 5, 400)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    @settings(max_examples=50, deadline=None)
    @given(labels, labels)
    def test_bounds_and_symmetry(self, la, lb):
        n = min(len(la), len(lb))
        a, b = la[:n], lb[:n]
        ri = rand_index(a, b)
        assert 0.0 <= ri <= 1.0
        assert ri == pytest.approx(rand_index(b, a))
        ari = adjusted_rand_index(a, b)
        assert ari <= 1.0 + 1e-9
        assert ari == pytest.approx(adjusted_rand_index(b, a))


class TestPurity:
    def test_perfect(self):
        assert purity([0, 0, 1, 1], [5, 5, 9, 9]) == 1.0

    def test_half(self):
        assert purity([0, 0, 0, 0], [1, 1, 2, 2]) == 0.5

    def test_bounds(self):
        g = resolve_rng(1)
        a = g.integers(-1, 3, 100)
        b = g.integers(-1, 3, 100)
        assert 0.0 < purity(a, b) <= 1.0


class TestOnRealClusterings:
    def test_dbscan_recovers_truth_by_ari(self, small_synthetic):
        from repro.core.dbscan import dbscan

        points, truth = small_synthetic
        res = dbscan(points, 0.8, 4)
        assert adjusted_rand_index(res.labels, truth) > 0.8
