"""Tests for the executor backends.

All four backends must produce the same *clusterings* (up to the
documented near-equivalence of reuse) for the same variant set; they
differ only in timing model and parallel substrate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dbscan import dbscan
from repro.core.reuse import CLUS_DENSITY
from repro.core.scheduling import SchedGreedy, SchedMinpts
from repro.core.variants import Variant, VariantSet
from repro.exec import (
    EXECUTORS,
    ProcessPoolExecutorBackend,
    SerialExecutor,
    SimulatedExecutor,
    ThreadPoolExecutorBackend,
    run_variants,
)
from repro.exec.base import IndexPair
from repro.exec.procpool import partition_reuse_chains
from repro.metrics.quality import quality_score
from repro.util.rng import resolve_rng

VSET = VariantSet.from_product([0.5, 0.7], [4, 8, 12])


@pytest.fixture(scope="module")
def blobs():
    g = resolve_rng(3)
    a = g.normal(0.0, 0.4, (120, 2))
    b = g.normal(0.0, 0.4, (120, 2)) + [7.0, 7.0]
    c = g.uniform(-3, 10, (30, 2))
    return np.vstack([a, b, c])


@pytest.fixture(scope="module")
def reference_results(blobs):
    return {v: dbscan(blobs, v.eps, v.minpts) for v in VSET}


class TestSerialExecutor:
    def test_all_variants_completed(self, blobs):
        batch = SerialExecutor().run(blobs, VSET)
        assert set(batch.results) == set(VSET)
        assert batch.record.n_variants == len(VSET)

    def test_results_match_scratch(self, blobs, reference_results):
        batch = SerialExecutor().run(blobs, VSET)
        for v in VSET:
            assert quality_score(reference_results[v], batch.results[v]) >= 0.99

    def test_only_first_variant_from_scratch(self, blobs):
        batch = SerialExecutor().run(blobs, VSET)
        # Figure 3-style chain: everything after the root can reuse.
        assert batch.record.n_from_scratch == 1

    def test_makespan_is_sum_of_durations(self, blobs):
        batch = SerialExecutor().run(blobs, VSET)
        assert batch.record.makespan == pytest.approx(
            batch.record.total_response_time
        )

    def test_forces_single_thread(self):
        assert SerialExecutor(n_threads=8).n_threads == 1

    def test_deterministic(self, blobs):
        a = SerialExecutor().run(blobs, VSET)
        b = SerialExecutor().run(blobs, VSET)
        assert a.record.makespan == b.record.makespan
        for v in VSET:
            assert np.array_equal(a.results[v].labels, b.results[v].labels)

    def test_run_variants_convenience(self, blobs):
        batch = run_variants(blobs, VSET)
        assert len(batch) == len(VSET)
        assert batch[VSET[0]].n_points == len(blobs)


class TestSimulatedExecutor:
    def test_scratch_count_equals_threads(self, blobs):
        batch = SimulatedExecutor(n_threads=3).run(blobs, VSET)
        assert batch.record.n_from_scratch == 3

    def test_scratch_bounded_by_reuse_cap(self, blobs):
        """At most (|V| - T)/|V| variants reuse (Section IV-D)."""
        for t in (1, 2, 4):
            batch = SimulatedExecutor(n_threads=t).run(blobs, VSET)
            reused = sum(1 for r in batch.record.records if not r.from_scratch)
            assert reused / len(VSET) <= VSET.max_reuse_fraction(t) + 1e-9

    def test_makespan_bounds(self, blobs):
        batch = SimulatedExecutor(n_threads=2).run(blobs, VSET)
        rec = batch.record
        assert rec.makespan >= max(r.response_time for r in rec.records)
        assert rec.makespan <= rec.total_response_time

    def test_makespan_at_least_lower_bound(self, blobs):
        rec = SimulatedExecutor(n_threads=4).run(blobs, VSET).record
        assert rec.makespan >= rec.lower_bound_makespan - 1e-9

    def test_timeline_no_overlap_within_thread(self, blobs):
        rec = SimulatedExecutor(n_threads=2).run(blobs, VSET).record
        for lane in rec.thread_timelines().values():
            for prev, cur in zip(lane, lane[1:]):
                assert cur.start >= prev.finish - 1e-9

    def test_deterministic_bit_for_bit(self, blobs):
        a = SimulatedExecutor(n_threads=4).run(blobs, VSET).record
        b = SimulatedExecutor(n_threads=4).run(blobs, VSET).record
        assert [r.finish for r in a.records] == [r.finish for r in b.records]

    def test_results_match_scratch(self, blobs, reference_results):
        batch = SimulatedExecutor(n_threads=4).run(blobs, VSET)
        for v in VSET:
            assert quality_score(reference_results[v], batch.results[v]) >= 0.99

    def test_more_threads_never_worse_makespan(self, blobs):
        m1 = SimulatedExecutor(n_threads=1).run(blobs, VSET).record.makespan
        m2 = SimulatedExecutor(n_threads=6).run(blobs, VSET).record.makespan
        # contention can eat gains but idle threads can't hurt more
        # than the full serial schedule
        assert m2 <= m1 * 1.01

    def test_schedminpts_head_runs_scratch(self, blobs):
        batch = SimulatedExecutor(n_threads=1, scheduler=SchedMinpts()).run(blobs, VSET)
        heads = {(0.5, 12), (0.7, 12)}
        for r in batch.record.records:
            if r.variant.as_tuple() in heads:
                assert r.from_scratch


class TestThreadPool:
    def test_completes_and_matches(self, blobs, reference_results):
        batch = ThreadPoolExecutorBackend(n_threads=4).run(blobs, VSET)
        assert set(batch.results) == set(VSET)
        for v in VSET:
            assert quality_score(reference_results[v], batch.results[v]) >= 0.99

    def test_records_have_thread_ids(self, blobs):
        batch = ThreadPoolExecutorBackend(n_threads=2).run(blobs, VSET)
        assert {r.thread_id for r in batch.record.records} <= {0, 1}

    def test_makespan_positive(self, blobs):
        batch = ThreadPoolExecutorBackend(n_threads=2).run(blobs, VSET)
        assert batch.record.makespan > 0


class TestProcessPool:
    def test_partition_covers_all_variants(self):
        groups = partition_reuse_chains(VSET, 3)
        flat = [v for g in groups for v in g]
        assert sorted(v.as_tuple() for v in flat) == sorted(v.as_tuple() for v in VSET)
        assert len(groups) <= 3

    def test_partition_prefix_closed_under_parents(self):
        """Within a group, each variant's best source (if in the group)
        appears before it."""
        groups = partition_reuse_chains(VSET, 2)
        for g in groups:
            seen = set()
            for v in g:
                sources = [u for u in g if v.can_reuse(u)]
                if sources:
                    assert any(u in seen for u in sources) or v == g[0] or not (
                        set(sources) & seen == set()
                    )
                seen.add(v)

    def test_single_worker_is_one_group(self):
        assert len(partition_reuse_chains(VSET, 1)) == 1

    def test_completes_and_matches(self, blobs, reference_results):
        batch = ProcessPoolExecutorBackend(n_threads=2).run(blobs, VSET)
        assert set(batch.results) == set(VSET)
        for v in VSET:
            assert quality_score(reference_results[v], batch.results[v]) >= 0.99


class TestRegistry:
    def test_executor_registry(self):
        assert set(EXECUTORS) == {
            "serial", "simulated", "threads", "processes", "sharded", "hybrid"
        }

    def test_record_carries_config(self, blobs):
        batch = SimulatedExecutor(
            n_threads=2, scheduler=SchedGreedy(), reuse_policy=CLUS_DENSITY
        ).run(blobs, VSET, dataset="blobs")
        rec = batch.record
        assert rec.scheduler == "SCHEDGREEDY"
        assert rec.reuse_policy == "CLUSDENSITY"
        assert rec.dataset == "blobs"
        assert rec.executor == "simulated"
        assert rec.n_threads == 2

    def test_shared_indexes_accepted(self, blobs):
        indexes = IndexPair.build(blobs, 16)
        a = SerialExecutor().run(blobs, VSET, indexes=indexes)
        b = SerialExecutor().run(blobs, VSET, indexes=indexes)
        assert a.record.makespan == b.record.makespan
