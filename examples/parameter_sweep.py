#!/usr/bin/env python3
"""Parameter-sweep study: schedulers, reuse policies, and executors.

A deeper tour of the variant-execution machinery on a Table I dataset:

* the static reuse-dependency tree of Figure 3(a);
* SCHEDGREEDY vs SCHEDMINPTS at several thread counts (simulated
  work-unit clock, deterministic);
* the three cluster-reuse heuristics of Section IV-C;
* a real process-pool run for wall-clock comparison.

Run:  python examples/parameter_sweep.py
"""

from __future__ import annotations

import time

from repro import SchedGreedy, SchedMinpts, SimulatedExecutor, VariantSet, dependency_tree
from repro.bench.reference import reference_run
from repro.core.reuse import CLUS_DEFAULT, CLUS_DENSITY, CLUS_PTS_SQUARED
from repro.core.scheduling import depth_first_schedule
from repro.data.registry import load_dataset
from repro.exec import ProcessPoolExecutorBackend
from repro.exec.base import IndexPair

# ------------------------------------------------------------------
ds = load_dataset("SW1", scale=0.005)
variants = VariantSet.from_product([0.2, 0.3, 0.4], [8, 16, 24, 32])
indexes = IndexPair.build(ds.points, 70)
print(f"dataset SW1 @ {ds.n_points} points; |V| = {len(variants)}")

# ------------------------------------------------------------------
# Figure 3(a): who would reuse whom under global knowledge.
tree = dependency_tree(variants)
print("\nreuse-dependency tree (parent -> children):")
for parent in depth_first_schedule(tree):
    kids = sorted(tree.successors(parent), key=lambda v: (v.eps, -v.minpts))
    if kids:
        print(f"  {parent} -> {', '.join(map(str, kids))}")
roots = [v for v, d in tree.nodes(data=True) if d.get("root")]
print(f"  roots (must cluster from scratch): {roots}")

# ------------------------------------------------------------------
# Reference baseline (sequential DBSCAN, r = 1).
ref = reference_run(ds.points, variants)
print(f"\nreference implementation: {ref.total_units:,.0f} work units")

# ------------------------------------------------------------------
# Scheduler x thread-count sweep on the deterministic simulated clock.
print("\nscheduler sweep (speedup over reference / scratch runs):")
print(f"{'T':>4}  {'SCHEDGREEDY':>22}  {'SCHEDMINPTS':>22}")
for t in (1, 2, 4, 8, 16):
    cells = []
    for sched in (SchedGreedy(), SchedMinpts()):
        batch = SimulatedExecutor(n_threads=t, scheduler=sched).run(
            ds.points, variants, indexes=indexes
        )
        rec = batch.record
        cells.append(
            f"{ref.total_units / rec.makespan:6.2f}x  ({rec.n_from_scratch:2d} scratch)"
        )
    print(f"{t:>4}  {cells[0]:>22}  {cells[1]:>22}")

# ------------------------------------------------------------------
# Reuse-policy comparison at T = 1 (the Figure 5/7 setting).
print("\nreuse-policy sweep (T = 1):")
for policy in (CLUS_DEFAULT, CLUS_DENSITY, CLUS_PTS_SQUARED):
    batch = SimulatedExecutor(n_threads=1, reuse_policy=policy).run(
        ds.points, variants, indexes=indexes
    )
    rec = batch.record
    print(
        f"  {policy.name:<15} {ref.total_units / rec.makespan:6.2f}x over reference, "
        f"avg reuse {rec.average_reuse_fraction:.1%}"
    )

# ------------------------------------------------------------------
# And a genuinely parallel wall-clock run.
t0 = time.perf_counter()
batch = ProcessPoolExecutorBackend(n_threads=4).run(ds.points, variants)
wall = time.perf_counter() - t0
print(
    f"\nprocess pool (4 workers): {len(batch.results)} variants in {wall:.2f}s wall, "
    f"avg reuse {batch.record.average_reuse_fraction:.1%} (chain-partitioned)"
)
