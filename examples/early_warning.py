#!/usr/bin/env python3
"""Early-warning demo: streaming TEC epochs at clustering throughput.

The paper's conclusion argues variant-based parallelism "could enable
the short run times required for early warning systems for natural
hazards".  This demo simulates that deployment: TEC maps arrive in
epochs (a disturbance growing over time); each epoch must be analysed
under a whole grid of DBSCAN parameterisations within a time budget,
and an alert fires when a rapidly-growing coherent disturbance is
detected consistently across variants.

Run:  python examples/early_warning.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import SerialExecutor, VariantSet
from repro.data.tec import TECMapModel, generate_tec_points
from repro.util.rng import resolve_rng

EPOCHS = 6
POINTS_PER_EPOCH = 6000
VARIANTS = VariantSet.from_product([0.25, 0.4], [4, 8, 16])
ALERT_GROWTH = 1.35  # largest-cluster growth factor that triggers an alert


def epoch_points(epoch: int) -> np.ndarray:
    """TEC measurements for one epoch; a disturbance front grows over time.

    The quiet-time map is fixed (same seed each epoch — the same region
    re-observed), and a wavefront-shaped enhancement sweeps through it,
    contributing more above-threshold measurements each epoch: the
    signature of a traveling ionospheric disturbance strengthening over
    the network (cf. the tsunami/earthquake signatures of the paper's
    introduction).
    """
    n_front = 120 * epoch * epoch
    base = generate_tec_points(
        POINTS_PER_EPOCH - n_front, TECMapModel(band_level=0.3), seed=900,
        area_fraction=0.01,
    )
    if n_front == 0:
        return base
    rng = resolve_rng(314 + epoch)
    center = np.median(base, axis=0)
    length = 2.0 + 1.2 * epoch  # the front elongates as it propagates
    along = rng.uniform(-length, length, n_front)
    across = rng.normal(0.0, 0.15, n_front)
    theta = 0.6
    front = center + np.column_stack(
        [along * np.cos(theta) - across * np.sin(theta),
         along * np.sin(theta) + across * np.cos(theta)]
    )
    return np.ascontiguousarray(np.vstack([base, front]))


def dominant_fraction(batch) -> float:
    """Median across variants of the largest cluster's share of points.

    Using the median over the whole variant grid makes the alarm robust
    to any single parameterisation's quirks — the reason the sweep is
    run at all.
    """
    shares = []
    for res in batch.results.values():
        sizes = res.cluster_sizes()
        shares.append(sizes.max() / res.n_points if sizes.size else 0.0)
    return float(np.median(shares))


def main() -> None:
    executor = SerialExecutor()
    previous = None
    print(
        f"monitoring: {EPOCHS} epochs x {POINTS_PER_EPOCH} points x "
        f"|V| = {len(VARIANTS)} variants\n"
    )
    for epoch in range(EPOCHS):
        pts = epoch_points(epoch)
        t0 = time.perf_counter()
        batch = executor.run(pts, VARIANTS, dataset=f"epoch{epoch}")
        wall = time.perf_counter() - t0
        share = dominant_fraction(batch)
        growth = share / previous if previous else 1.0
        status = "ALERT" if growth >= ALERT_GROWTH else "ok"
        print(
            f"epoch {epoch}: analysed in {wall:5.2f}s "
            f"(reuse {batch.record.average_reuse_fraction:5.1%}), "
            f"dominant-feature share {share:6.1%}, growth x{growth:4.2f}  [{status}]"
        )
        if status == "ALERT":
            print(
                "        -> coherent disturbance growing across all "
                "parameterisations; dispatch warning."
            )
        previous = share


if __name__ == "__main__":
    main()
