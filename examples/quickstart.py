#!/usr/bin/env python3
"""Quickstart: cluster one dataset under many DBSCAN parameterisations.

Covers the core public API in ~60 lines:

1. make a 2-D point database;
2. cluster it once with plain DBSCAN;
3. define a variant grid ``V = A x B`` and run the whole batch with
   VariantDBSCAN's reuse + scheduling (one call);
4. inspect per-variant results and the reuse statistics.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Session,
    Variant,
    VariantSet,
    dbscan,
    quality_score,
)
from repro.util.rng import resolve_rng

# ----------------------------------------------------------------- 1.
# A toy database: three blobs of different density plus uniform noise.
rng = resolve_rng(42)
points = np.vstack(
    [
        rng.normal([0, 0], 0.4, (400, 2)),
        rng.normal([10, 0], 0.8, (300, 2)),
        rng.normal([5, 9], 0.3, (200, 2)),
        rng.uniform(-3, 13, (100, 2)),
    ]
)
print(f"database: {len(points)} points")

# ----------------------------------------------------------------- 2.
# One plain DBSCAN run.
result = dbscan(points, eps=0.6, minpts=4)
print(
    f"dbscan(eps=0.6, minpts=4): {result.n_clusters} clusters, "
    f"{result.n_noise} noise points, "
    f"{result.counters.neighbor_searches} neighborhood searches"
)

# ----------------------------------------------------------------- 3.
# A variant grid, exactly the paper's V = A x B notation.
variants = VariantSet.from_product([0.4, 0.6, 0.8], [4, 8, 16])
print(f"\nvariant grid: |V| = {len(variants)}  ->  {list(variants)}")

# The Session owns the point store and memoized indexes; defaults are
# the paper's (SerialExecutor, SCHEDGREEDY, CLUSDENSITY).
session = Session(points)
batch = session.run(variants)

# ----------------------------------------------------------------- 4.
print("\nper-variant results (note reuse kicking in after the first):")
for rec in batch.record.records:
    src = f"reused {rec.reused_from}" if rec.reused_from else "from scratch"
    print(
        f"  {str(rec.variant):>10}: {rec.n_clusters:3d} clusters, "
        f"reuse {rec.reuse_fraction:5.1%}, {src}"
    )
print(
    f"\nbatch: {batch.record.n_from_scratch}/{len(variants)} from scratch, "
    f"average reuse {batch.record.average_reuse_fraction:.1%}"
)

# Reused results are interchangeable with scratch runs:
v = Variant(0.8, 4)
scratch = dbscan(points, v.eps, v.minpts)
print(f"quality of reused {v} vs scratch: {quality_score(scratch, batch[v]):.4f}")

# Executors and knobs are pluggable per run; the indexes built above
# are reused unless a knob (here low_res_r) forces a different pair.
batch2 = session.run(variants, executor="serial", low_res_r=100)
assert len(batch2) == len(variants)
session.close()
print("done.")
