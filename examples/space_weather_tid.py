#!/usr/bin/env python3
"""Space-weather pipeline: detect ionospheric features in a TEC map.

Mirrors the paper's motivating application (Section I): build a Total
Electron Content map, threshold it into a 2-D point database, then run
a grid of DBSCAN variants to find the parameterisation that best
isolates Traveling-Ionospheric-Disturbance-like features, using
VariantDBSCAN so the whole sweep costs far less than independent runs.

Run:  python examples/space_weather_tid.py
"""

from __future__ import annotations

import numpy as np

from repro import SerialExecutor, VariantSet
from repro.data.tec import TECMapModel, generate_tec_points

# ------------------------------------------------------------------
# 1. Simulated GPS-derived TEC measurements (a dense regional network).
model = TECMapModel(band_level=0.4)  # include TID wavefront bands
points = generate_tec_points(15_000, model, seed=7, area_fraction=0.02)
lon0, lon1 = points[:, 0].min(), points[:, 0].max()
lat0, lat1 = points[:, 1].min(), points[:, 1].max()
print(
    f"TEC point database: {len(points)} measurements over "
    f"[{lon0:.0f}, {lon1:.0f}] x [{lat0:.0f}, {lat1:.0f}] degrees"
)

# ------------------------------------------------------------------
# 2. Sweep parameters: it is unknown a priori which (eps, minpts)
#    separates TID bands from the background, so run a whole grid.
variants = VariantSet.from_product([0.2, 0.3, 0.4, 0.6], [4, 8, 16, 32])
batch = SerialExecutor().run(points, variants, dataset="tec-demo")
print(
    f"swept |V| = {len(variants)} variants with "
    f"{batch.record.n_from_scratch} scratch run(s); "
    f"average reuse {batch.record.average_reuse_fraction:.1%}"
)

# ------------------------------------------------------------------
# 3. Model selection: prefer parameterisations yielding several
#    elongated (band-like) clusters of meaningful size.
def elongation(pts: np.ndarray) -> float:
    """Aspect ratio of a cluster's principal axes (1 = round)."""
    if len(pts) < 3:
        return 1.0
    cov = np.cov((pts - pts.mean(axis=0)).T)
    ev = np.sort(np.linalg.eigvalsh(cov))
    return float(np.sqrt(ev[1] / max(ev[0], 1e-12)))


print("\nvariant        clusters  noise%  big  elongated  score")
best, best_score = None, -1.0
for v in variants:
    res = batch[v]
    sizes = res.cluster_sizes()
    big = [c for c in range(res.n_clusters) if sizes[c] >= 50]
    members = res.cluster_members()
    elong = sum(1 for c in big if elongation(points[members[c]]) >= 2.5)
    noise_pct = res.n_noise / res.n_points
    # crude utility: several substantial clusters, some band-like,
    # moderate noise (neither everything-noise nor one giant blob)
    score = elong * 2 + min(len(big), 8) - 6 * abs(noise_pct - 0.15)
    marker = ""
    if score > best_score:
        best, best_score, marker = v, score, "  <- best so far"
    print(
        f"{str(v):>12}  {res.n_clusters:8d}  {noise_pct:5.1%}  {len(big):3d}  "
        f"{elong:9d}  {score:5.2f}{marker}"
    )

res = batch[best]
print(f"\nselected variant {best}: {res.n_clusters} clusters")

# ------------------------------------------------------------------
# 4. ASCII rendering of the selected clustering (top clusters lettered).
W, H = 78, 24
grid = [[" "] * W for _ in range(H)]
order = np.argsort(-res.cluster_sizes())[:20]
symbol = {int(c): chr(ord("A") + i) for i, c in enumerate(order[:26])}
for (x, y), lbl in zip(points, res.labels):
    i = int((y - lat0) / max(lat1 - lat0, 1e-9) * (H - 1))
    j = int((x - lon0) / max(lon1 - lon0, 1e-9) * (W - 1))
    ch = symbol.get(int(lbl), "." if lbl >= 0 else " ")
    grid[H - 1 - i][j] = ch
print("\nmap (letters = largest clusters, '.' = other clusters):")
print("\n".join("".join(row) for row in grid))
