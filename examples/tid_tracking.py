#!/usr/bin/env python3
"""Track a traveling disturbance across epochs and estimate its velocity.

The full monitoring pipeline the paper's introduction motivates: TEC
measurements arrive in epochs; a :class:`VariantMonitor` keeps a whole
parameter grid clustered incrementally; a :class:`ClusterTracker`
links the selected variant's clusters across epochs; and the dominant
track's fitted drift velocity is the physical observable (TID
propagation speed and direction).

Run:  python examples/tid_tracking.py
"""

from __future__ import annotations

import numpy as np

from repro.core.variants import Variant, VariantSet
from repro.stream import ClusterTracker, VariantMonitor
from repro.util.rng import resolve_rng

RNG = resolve_rng(99)
EPOCHS = 7
TRUE_VELOCITY = np.array([1.8, 0.6])  # degrees / epoch, the ground truth


def epoch_batch(epoch: int) -> np.ndarray:
    """Quiet background + a wavefront drifting at TRUE_VELOCITY."""
    background = RNG.uniform([0, 0], [40, 20], (250, 2))
    center = np.array([6.0, 6.0]) + TRUE_VELOCITY * epoch
    along = RNG.uniform(-4.0, 4.0, 220)
    across = RNG.normal(0.0, 0.25, 220)
    theta = np.arctan2(TRUE_VELOCITY[1], TRUE_VELOCITY[0]) + np.pi / 2
    front = center + np.column_stack(
        [along * np.cos(theta) - across * np.sin(theta),
         along * np.sin(theta) + across * np.cos(theta)]
    )
    return np.vstack([background, front])


def main() -> None:
    variants = VariantSet.from_product([0.5, 0.8], [4, 8])
    chosen = Variant(0.8, 4)  # the parameterisation the analyst trusts
    monitor = VariantMonitor(variants)
    tracker = ClusterTracker(gate=4.0, overlap_eps=0.8, min_size=40, max_misses=1)

    print(f"monitoring |V| = {len(variants)}; tracking variant {chosen}")
    print(f"true front velocity: ({TRUE_VELOCITY[0]:+.2f}, {TRUE_VELOCITY[1]:+.2f}) deg/epoch\n")
    for epoch in range(EPOCHS):
        batch = epoch_batch(epoch)
        summary = monitor.observe(batch)
        # Tracking consumes the *current epoch's own* points, so
        # cluster the batch alone under the chosen variant:
        from repro import dbscan

        result = dbscan(batch, chosen.eps, chosen.minpts)
        update = tracker.update(batch, result)
        print(
            f"epoch {epoch}: {result.n_clusters:3d} clusters | "
            f"tracks matched={len(update.matched)} opened={len(update.opened)} "
            f"closed={len(update.closed)} | dominant share {summary.dominant_share:.1%}"
        )

    print("\ntracks observed >= 3 epochs:")
    for track in tracker.tracks(min_length=3):
        v = track.velocity()
        print(
            f"  track {track.track_id}: {track.length} epochs, last size "
            f"{track.last.size}, velocity ({v[0]:+.2f}, {v[1]:+.2f}) deg/epoch, "
            f"speed {track.speed():.2f}"
        )

    best = max(tracker.tracks(min_length=3), key=lambda t: t.last.size)
    err = np.linalg.norm(best.velocity() - TRUE_VELOCITY)
    print(f"\ndominant track velocity error vs truth: {err:.2f} deg/epoch")


if __name__ == "__main__":
    main()
