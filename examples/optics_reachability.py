#!/usr/bin/env python3
"""OPTICS baseline: one pass, every eps — and where it falls short.

The paper's Related Work (Section III) positions OPTICS as the
established way to explore many eps values: a single pass at a maximum
radius ``delta`` yields an ordering whose *reachability profile* makes
cluster structure visible at every ``eps <= delta`` at once.  This
example computes that profile for a space-weather point set, renders
it, extracts DBSCAN-equivalent clusterings at several radii, and then
demonstrates the limitation VariantDBSCAN addresses: a grid over
``minpts`` needs one full OPTICS pass per value.

Run:  python examples/optics_reachability.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import dbscan, quality_score
from repro.baselines import extract_dbscan, optics
from repro.data.registry import load_dataset
from repro.viz import reachability_plot

ds = load_dataset("SW1", scale=0.004)
points = ds.points
print(f"dataset: SW1 @ {len(points)} points")

# ------------------------------------------------------------------
# One OPTICS pass supports every eps <= delta.
DELTA, MINPTS = 0.5, 8
t0 = time.perf_counter()
ordering = optics(points, DELTA, MINPTS)
t_pass = time.perf_counter() - t0
print(f"\nOPTICS pass (delta={DELTA}, minpts={MINPTS}): {t_pass:.2f}s")

print("\nreachability profile (valleys = clusters, | = component breaks):")
print(reachability_plot(ordering.reachability, width=76, height=10))

# ------------------------------------------------------------------
# Extraction is O(n) per eps and matches plain DBSCAN.
print(f"\n{'eps':>6}  {'clusters':>8}  {'noise':>6}  {'extract (s)':>11}  quality")
for eps in (0.15, 0.25, 0.35, 0.5):
    t0 = time.perf_counter()
    ext = extract_dbscan(ordering, eps)
    t_ext = time.perf_counter() - t0
    ref = dbscan(points, eps, MINPTS)
    print(
        f"{eps:>6}  {ext.n_clusters:>8}  {ext.n_noise:>6}  {t_ext:>11.4f}  "
        f"{quality_score(ref, ext):.4f}"
    )

# ------------------------------------------------------------------
# The limitation: the ordering is only valid for its minpts.
print("\nminpts grid -> one OPTICS pass per value (the paper's argument):")
total = 0.0
for minpts in (4, 8, 16):
    t0 = time.perf_counter()
    optics(points, DELTA, minpts)
    dt = time.perf_counter() - t0
    total += dt
    print(f"  minpts={minpts:<3} pass: {dt:.2f}s")
print(
    f"  total {total:.2f}s for 3 minpts values — vs one VariantDBSCAN batch "
    "reusing results across the whole eps x minpts grid (see "
    "benchmarks/bench_baseline_optics.py)."
)
