"""Repo-root conftest: make ``src/`` importable without installation.

The offline environment lacks the ``wheel`` package that
``pip install -e .`` needs (see setup.py); ``python setup.py develop``
works, but this path shim makes ``pytest`` robust either way.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
